"""Ablation studies for the design choices the paper argues informally.

* :func:`page_size_sweep` — the Hilbert/column crossover versus coherence
  unit size (sections 3.4 and 5.3.2): column ordering wins at page
  granularity, Hilbert at cache-line granularity.
* :func:`object_size_sweep` — the Water-Spatial rationale (section 5.1):
  once an object is much larger than the consistency unit there is no false
  sharing for reordering to remove.
* :func:`curve_quality` — Hilbert vs Morton vs column locality of spatial
  neighbours in the reordered array.
* :func:`sequential_locality` — single-processor TLB/L2 behaviour of
  traversal order vs memory order (the Table 2 single-processor columns).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..apps import AppConfig
from ..apps.moldyn import Moldyn
from ..apps.barnes_hut import BarnesHut
from ..machines.cache import LRUCache
from ..machines.dsm import simulate_treadmarks_sweep
from ..machines.params import cluster_scaled
from ..runtime.context import get_runtime
from .runner import Scale
from .sweep import SweepGrid, SweepPlan

__all__ = [
    "page_size_sweep",
    "object_size_sweep",
    "curve_quality",
    "sequential_locality",
]


def page_size_sweep(
    n: int = 2048,
    nprocs: int = 16,
    page_sizes: tuple[int, ...] = (128, 512, 2048, 8192),
    *,
    seed: int = 42,
    iterations: int = 3,
) -> list[dict]:
    """Moldyn TreadMarks traffic vs consistency-unit size, per ordering.

    The paper's crossover: with large units column ordering beats Hilbert
    (slab boundaries land on few pages); with cache-line-sized units the
    slab's larger surface loses to the Hilbert cube.

    Each ordering's trace is replayed once: interval summaries are built
    at the finest page size and folded up the 2x ladder, so adding sweep
    points costs protocol replay only.  With a runtime installed the two
    orderings run as parallel :class:`repro.experiments.sweep.SweepPlan`
    groups; per-point numbers are identical either way.
    """
    versions = ("column", "hilbert")
    sizes = tuple(int(p) for p in page_sizes)
    rt = get_runtime()
    if rt is not None and rt.cache is not None:
        # Sweep-planner path: one batched (trace, page-ladder) group per
        # ordering, dispatched through the executor with checkpointing.
        base = Scale()
        scale = replace(
            base,
            n={**base.n, "moldyn": n},
            iterations={**base.iterations, "moldyn": iterations},
            nprocs=nprocs,
            seed=seed,
        )
        grid = SweepGrid(
            apps=("moldyn",), versions=versions,
            platforms=("treadmarks",), page_sizes=sizes,
        )
        cells = {
            (r["version"], r["page_size"]): r
            for r in SweepPlan(grid, scale).run()
        }
        rows = []
        for page in sizes:
            row = {"page_size": page}
            for version in versions:
                row[f"{version}_messages"] = cells[(version, page)]["messages"]
                row[f"{version}_mbytes"] = cells[(version, page)]["data_mbytes"]
            rows.append(row)
        return rows
    # No runtime installed: build the two traces in-process; one folded
    # interval ladder per ordering still serves every page size.
    params = cluster_scaled(nprocs=nprocs)
    sweeps = {}
    for version in versions:
        app = Moldyn(AppConfig(n=n, nprocs=nprocs, iterations=iterations, seed=seed))
        app.reorder(version)
        sweeps[version] = simulate_treadmarks_sweep(app.run(), params, sizes)
    rows = []
    for page in sizes:
        row = {"page_size": page}
        for version in versions:
            res = sweeps[version][page]
            row[f"{version}_messages"] = res.messages
            row[f"{version}_mbytes"] = res.data_mbytes
        rows.append(row)
    return rows


def object_size_sweep(
    n: int = 2048,
    nprocs: int = 16,
    object_sizes: tuple[int, ...] = (32, 72, 128, 256, 680),
    *,
    line_size: int = 128,
    seed: int = 42,
) -> list[dict]:
    """False-sharing exposure vs object size at fixed line size.

    Counts, for the Barnes-Hut update pattern, the cache lines written by
    more than one processor: as the object grows past the line size the
    count collapses regardless of ordering — the paper's explanation for
    Water-Spatial's insensitivity on the Origin.
    """
    from .figures import barnes_update_pages

    rows = []
    for osize in object_sizes:
        row = {"object_size": osize}
        for version in ("original", "hilbert"):
            line, owner = barnes_update_pages(
                n, nprocs, seed=seed, version=version, object_size=osize, page_size=line_size
            )
            nlines = int(line.max()) + 1
            # A line is falsely shared when >1 distinct owner writes it:
            # dedup (line, owner) pairs in one pass and count lines with
            # more than one surviving pair.
            span = np.int64(owner.max()) + 1
            pairs = np.unique(line.astype(np.int64) * span + owner)
            per_line = np.bincount(pairs // span, minlength=nlines)
            row[f"{version}_shared_lines"] = int(np.count_nonzero(per_line > 1))
            row[f"{version}_lines"] = nlines
        rows.append(row)
    return rows


@dataclass(frozen=True)
class CurveQuality:
    ordering: str
    mean_neighbor_gap: float  # mean |rank difference| of spatial neighbours
    page_spread: float  # mean distinct pages holding a molecule's partners


def curve_quality(
    n: int = 2048,
    *,
    seed: int = 42,
    object_size: int = 72,
    page_size: int = 4096,
) -> list[CurveQuality]:
    """Locality quality of each ordering over Moldyn's neighbour structure.

    A thin wrapper over :func:`repro.core.metrics.ordering_report` bound to
    the Moldyn interaction list (the structure behind the paper's Figure 6).
    """
    from ..core.metrics import ordering_report

    app = Moldyn(AppConfig(n=n, nprocs=1, iterations=1, seed=seed))
    rows = ordering_report(
        app.positions(),
        app.pairs,
        object_size=object_size,
        page_size=page_size,
        include_original=False,
    )
    return [
        CurveQuality(
            ordering=r.ordering,
            mean_neighbor_gap=r.neighbor_rank_gap,
            page_spread=r.partner_page_spread,
        )
        for r in rows
    ]


def sequential_locality(
    n: int = 2048,
    *,
    seed: int = 42,
    tlb_entries: int = 64,
    page_size: int = 16384,
    iterations: int = 1,
) -> dict[str, dict[str, int]]:
    """Single-processor traversal locality, original vs Hilbert order.

    Replays the one-processor Barnes-Hut trace through a standalone TLB —
    the isolated mechanism behind Table 2's single-processor TLB column.
    """
    out: dict[str, dict[str, int]] = {}
    for version in ("original", "hilbert"):
        app = BarnesHut(AppConfig(n=n, nprocs=1, iterations=iterations, seed=seed))
        if version != "original":
            app.reorder(version)
        trace = app.run()
        from ..trace.layout import Layout

        layout = Layout.for_trace(trace, align=page_size)
        tlb = LRUCache(tlb_entries)
        misses = 0
        accesses = 0
        for epoch in trace.epochs:
            # One batched unit conversion per epoch (packed traces hand
            # over their columns view-only); runs are collapsed within
            # each burst exactly as the per-burst loop did, so the
            # access count is unchanged.
            regs, idx, _ = epoch.flat(0)
            if regs.shape[0] == 0:
                continue
            if hasattr(epoch, "burst_length"):
                b0, b1 = int(epoch.burst_offsets[0]), int(epoch.burst_offsets[1])
                lens = np.asarray(epoch.burst_length[b0:b1], dtype=np.int64)
            else:
                lens = np.fromiter(
                    (len(b) for b in epoch.bursts[0]),
                    dtype=np.int64,
                    count=len(epoch.bursts[0]),
                )
            pages, counts = layout.units_batch(
                regs, idx, page_size, return_counts=True
            )
            bid = np.repeat(np.repeat(np.arange(lens.shape[0]), lens), counts)
            keep = np.empty(pages.shape[0], dtype=bool)
            keep[0] = True
            np.logical_or(
                pages[1:] != pages[:-1], bid[1:] != bid[:-1], out=keep[1:]
            )
            collapsed = pages[keep]
            misses += tlb.access_stream(collapsed)
            accesses += collapsed.shape[0]
        out[version] = {"tlb_misses": misses, "accesses": accesses}
    return out
