"""ASCII rendering of the reproduced tables and figures.

The benchmark harness prints these so a run of ``pytest benchmarks/``
regenerates, row for row and series for series, what the paper reports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_table", "render_series", "render_update_map", "render_path", "hbar"]


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(
            " | ".join(
                c.rjust(w) if _numericish(c) else c.ljust(w)
                for c, w in zip(row, widths)
            )
        )
    return "\n".join(out)


def _fmt(c) -> str:
    if isinstance(c, float):
        if c == 0:
            return "0"
        if abs(c) >= 1000:
            return f"{c:,.0f}"
        if abs(c) >= 10:
            return f"{c:.1f}"
        return f"{c:.3g}"
    if isinstance(c, (int, np.integer)):
        return f"{int(c):,}"
    return str(c)


def _numericish(c: str) -> bool:
    return bool(c) and (c[0].isdigit() or (c[0] in "-+." and len(c) > 1))


def hbar(value: float, vmax: float, width: int = 40) -> str:
    """A text bar for speedup charts."""
    if vmax <= 0:
        return ""
    k = int(round(width * max(value, 0.0) / vmax))
    return "#" * k


def render_series(
    series: dict[str, np.ndarray], title: str = "", xlabel: str = "index"
) -> str:
    """Summarize numeric series (mean/min/max + a coarse sparkline)."""
    out = [title] if title else []
    for name, values in series.items():
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            out.append(f"  {name}: (empty)")
            continue
        spark = _sparkline(values)
        out.append(
            f"  {name}: mean={values.mean():.3g} min={values.min():.3g} "
            f"max={values.max():.3g} over {values.size} {xlabel}s  {spark}"
        )
    return "\n".join(out)


def _sparkline(values: np.ndarray, width: int = 48) -> str:
    marks = " .:-=+*#%@"
    if values.size > width:
        # Bucket means.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])]
        )
    vmax = values.max()
    if vmax <= 0:
        return "|" + " " * values.size + "|"
    idx = np.clip((values / vmax * (len(marks) - 1)).astype(int), 0, len(marks) - 1)
    return "|" + "".join(marks[i] for i in idx) + "|"


def render_update_map(
    page: np.ndarray, owner: np.ndarray, nprocs: int, title: str = ""
) -> str:
    """Figures 1/4: one row per processor, one column per body, ``*`` where
    that processor updates the body; page boundaries marked with ``|``."""
    n = page.shape[0]
    boundaries = set(np.nonzero(np.diff(page))[0] + 1)
    out = [title] if title else []
    for p in range(nprocs):
        row = []
        for i in range(n):
            if i in boundaries:
                row.append("|")
            row.append("*" if owner[i] == p else ".")
        out.append(f"P{p}: " + "".join(row))
    return "\n".join(out)


def render_path(path: np.ndarray, side: int, title: str = "") -> str:
    """Figure 3: visit order of a grid ordering as a number matrix."""
    grid = np.zeros((side, side), dtype=np.int64)
    for step, (x, y) in enumerate(path.tolist()):
        grid[y, x] = step
    w = len(str(side * side - 1))
    out = [title] if title else []
    for y in range(side - 1, -1, -1):
        out.append(" ".join(str(grid[y, x]).rjust(w) for x in range(side)))
    return "\n".join(out)
