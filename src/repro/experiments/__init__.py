"""Experiment harness: regenerate every table and figure of the paper."""

from .adaptive import (
    ADAPTIVE_POLICIES,
    DYNAMIC_APPS,
    AdaptiveCell,
    AdaptiveSpec,
    adaptive_breakeven,
    breakeven_report,
    run_policy,
)
from .ablations import (
    curve_quality,
    object_size_sweep,
    page_size_sweep,
    sequential_locality,
)
from .figures import fig1_fig4, fig2_fig5, fig3, fig6, fig7, fig8_fig9
from .runner import (
    RunRecord,
    Scale,
    clear_cache,
    make_app,
    prefetch_traces,
    run_one,
    run_suite,
    versions_for,
)
from .analysis import Diagnosis, diagnose
from .message_passing import (
    MessagePassingResult,
    dsm_overhead,
    ideal_message_passing,
)
from .scaling import ScalingPoint, scaling_curve
from .sweep import SweepGrid, SweepPlan, parse_grid
from .tables import table1, table2, table3, table4
from .tune import (
    CandidateScore,
    RecommendationLibrary,
    TuneResult,
    TuneSpec,
    default_candidates,
    tune,
)

__all__ = [
    "Scale",
    "RunRecord",
    "run_one",
    "run_suite",
    "make_app",
    "versions_for",
    "clear_cache",
    "prefetch_traces",
    "fig1_fig4",
    "fig2_fig5",
    "fig3",
    "fig6",
    "fig7",
    "fig8_fig9",
    "table1",
    "table2",
    "table3",
    "table4",
    "page_size_sweep",
    "object_size_sweep",
    "curve_quality",
    "sequential_locality",
    "scaling_curve",
    "ScalingPoint",
    "SweepGrid",
    "SweepPlan",
    "parse_grid",
    "ideal_message_passing",
    "dsm_overhead",
    "MessagePassingResult",
    "diagnose",
    "Diagnosis",
    "TuneSpec",
    "TuneResult",
    "CandidateScore",
    "RecommendationLibrary",
    "tune",
    "default_candidates",
    "ADAPTIVE_POLICIES",
    "DYNAMIC_APPS",
    "AdaptiveSpec",
    "AdaptiveCell",
    "run_policy",
    "adaptive_breakeven",
    "breakeven_report",
]
