"""One-stop layout diagnosis for an application run.

``diagnose`` pulls together everything the library can say about a data
layout: per-region page sharing, the hardware miss breakdown
(cold/coherence/capacity), DSM traffic under both protocols, and the
overhead over ideal message passing.  The CLI exposes it as
``python -m repro diagnose <app> [--version hilbert]`` so a user can see,
in one table, what reordering would buy their configuration — the
decision-support the paper's section 3.4 guidelines compress into a rule
of thumb.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machines.dsm import simulate_hlrc, simulate_treadmarks
from ..machines.hardware import simulate_hardware
from ..machines.params import ClusterParams, HardwareParams
from ..trace.events import Trace
from ..trace.layout import Layout
from ..trace.stats import mean_sharers, page_sharers
from .message_passing import dsm_overhead, ideal_message_passing

__all__ = ["Diagnosis", "diagnose"]


@dataclass
class Diagnosis:
    """Everything the simulators can say about one run's data layout."""

    nprocs: int
    region_sharers: dict[str, float]  # mean writers per page, per region
    l2_misses: int
    cold_misses: int
    coherence_misses: int
    capacity_misses: int
    tlb_misses: int
    tm_messages: int
    tm_data_mbytes: float
    hlrc_messages: int
    hlrc_data_mbytes: float
    mp_data_mbytes: float
    tm_data_factor: float  # TreadMarks bytes over the message-passing ideal
    notes: list[str] = field(default_factory=list)

    def rows(self) -> list[list]:
        """Flat (metric, value) rows for table rendering."""
        out: list[list] = []
        for name, sh in self.region_sharers.items():
            out.append([f"writers/page [{name}]", round(sh, 2)])
        out += [
            ["L2 misses", self.l2_misses],
            ["  cold", self.cold_misses],
            ["  coherence", self.coherence_misses],
            ["  capacity/conflict", self.capacity_misses],
            ["TLB misses", self.tlb_misses],
            ["TreadMarks messages", self.tm_messages],
            ["TreadMarks MB", round(self.tm_data_mbytes, 2)],
            ["HLRC messages", self.hlrc_messages],
            ["HLRC MB", round(self.hlrc_data_mbytes, 2)],
            ["ideal message-passing MB", round(self.mp_data_mbytes, 2)],
            ["TM overhead over ideal", f"{self.tm_data_factor:.1f}x"],
        ]
        return out


def diagnose(
    trace: Trace,
    hardware: HardwareParams | None = None,
    cluster: ClusterParams | None = None,
    *,
    page_size: int = 4096,
) -> Diagnosis:
    """Run every analysis the package offers over one trace."""
    from ..machines.params import CLUSTER_16, ORIGIN2000

    hardware = hardware or ORIGIN2000
    cluster = cluster or CLUSTER_16
    layout = Layout.for_trace(trace, align=max(page_size, hardware.page_size))

    sharers = {
        r.name: mean_sharers(page_sharers(trace, layout, i, page_size))
        for i, r in enumerate(trace.regions)
    }
    hw = simulate_hardware(trace, hardware, layout)
    tm = simulate_treadmarks(trace, cluster)
    hl = simulate_hlrc(trace, cluster)
    mp = ideal_message_passing(trace, layout)
    ov = dsm_overhead(tm, mp)

    notes = []
    worst = max(sharers, key=sharers.get) if sharers else None
    if worst and sharers[worst] > 2.0:
        notes.append(
            f"region {worst!r} is falsely shared ({sharers[worst]:.1f} "
            "writers/page): a candidate for data reordering"
        )
    if hw.total_l2_misses and hw.coherence_misses.sum() > 0.3 * hw.total_l2_misses:
        notes.append("coherence misses dominate the L2 miss mix")
    if ov["data_factor"] > 5:
        notes.append(
            "DSM moves >5x the ideal communication volume: page granularity "
            "is being wasted on this layout"
        )

    return Diagnosis(
        nprocs=trace.nprocs,
        region_sharers=sharers,
        l2_misses=hw.total_l2_misses,
        cold_misses=int(hw.cold_misses.sum()),
        coherence_misses=int(hw.coherence_misses.sum()),
        capacity_misses=int(hw.capacity_misses.sum()),
        tlb_misses=hw.total_tlb_misses,
        tm_messages=tm.messages,
        tm_data_mbytes=tm.data_mbytes,
        hlrc_messages=hl.messages,
        hlrc_data_mbytes=hl.data_mbytes,
        mp_data_mbytes=mp.data_mbytes,
        tm_data_factor=ov["data_factor"],
        notes=notes,
    )
