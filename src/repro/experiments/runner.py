"""Experiment runner: app x version x platform -> paper metrics.

One :func:`run_suite` call executes an application once per data-ordering
version (sharing the trace across all three platforms, which are pure
functions of it) and once sequentially (the speedup baseline — "all
speedups are computed relative to the single-processor version of the
original benchmark").  Results are memoized in-process so that e.g. the
Figure 7 bench and the Table 2 bench do not re-run the same simulations.

When a :class:`repro.runtime.RuntimeContext` is installed (CLI ``--jobs``/
``--cache-dir``, benchmark env vars, or tests), trace generation gains two
resilience layers: a **persistent cache** under the in-process memo — so a
run killed mid-matrix resumes from the cells already on disk — and an
optional **parallel prefetch** (:func:`prefetch_traces`) that fans the
distinct traces of the evaluation matrix out across worker processes with
timeouts and retries.  Per-cell progress (cache hit/miss, generation
duration) is logged on the ``repro.runtime`` logger.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

from ..apps import APP_REGISTRY, AppConfig, reorder_cycles, resolve_engine
from ..errors import ConfigError, MetricError, UnknownAppError, UnknownPlatformError
from ..machines.dsm import simulate_hlrc, simulate_treadmarks
from ..machines.hardware import simulate_hardware
from ..machines.params import (
    CLUSTER_16,
    ClusterParams,
    HardwareParams,
    origin2000_scaled,
)
from ..machines.replay import build_intervals_parallel, simulate_hardware_parallel
from ..runtime.cache import CacheKey, format_version_for
from ..runtime.context import get_runtime
from ..runtime.executor import Task, run_tasks
from ..runtime.worker import generate_trace_into_cache

__all__ = [
    "Scale",
    "RunRecord",
    "run_suite",
    "make_app",
    "clear_cache",
    "prefetch_traces",
]

log = logging.getLogger("repro.runtime")

PLATFORMS = ("origin", "treadmarks", "hlrc")

#: The paper's measured iteration counts (Table 1) — used to amortize the
#: one-time reordering cost when a scaled run uses fewer iterations: the
#: paper charges one reorder against a full-length run, so a run with k of
#: the paper's K iterations is charged k/K of the cost.
PAPER_ITERATIONS = {
    "barnes-hut": 6,
    "fmm": 3,
    "water-spatial": 10,
    "moldyn": 40,
    "unstructured": 40,
}


@dataclass(frozen=True)
class Scale:
    """Problem scaling for the whole evaluation.

    The paper runs 32-65 K objects for tens of iterations on real hardware;
    the pure-Python default is ~8x smaller with the cache/TLB reach of the
    simulated Origin shrunk by ``hw_scale`` to preserve working-set ratios
    (see DESIGN.md section 5).  ``paper()`` returns the full-size
    configuration.

    Inputs are validated at construction: sizes and iteration counts must
    be positive, app names must be registered, ``nprocs >= 1``.
    """

    n: dict[str, int] = field(
        default_factory=lambda: {
            "barnes-hut": 4096,
            "fmm": 4096,
            "water-spatial": 4096,
            "moldyn": 4096,
            "unstructured": 4096,
        }
    )
    iterations: dict[str, int] = field(
        default_factory=lambda: {
            "barnes-hut": 2,
            "fmm": 2,
            "water-spatial": 3,
            "moldyn": 5,
            "unstructured": 5,
        }
    )
    nprocs: int = 16
    seed: int = 42
    hw_scale: float = 16.0
    #: Extra knobs forwarded verbatim to every app's ``AppConfig.extra``
    #: (e.g. ``{"engine": "loop"}`` to force the per-object numerics).
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = (set(self.n) | set(self.iterations)) - set(APP_REGISTRY)
        if unknown:
            raise ConfigError(
                f"unknown application(s) in Scale: {sorted(unknown)};"
                f" expected names from {sorted(APP_REGISTRY)}"
            )
        for app, value in self.n.items():
            if value <= 0:
                raise ConfigError(f"Scale.n[{app!r}] must be positive, got {value}")
        for app, value in self.iterations.items():
            if value < 1:
                raise ConfigError(
                    f"Scale.iterations[{app!r}] must be >= 1, got {value}"
                )
        if self.nprocs < 1:
            raise ConfigError(f"Scale.nprocs must be >= 1, got {self.nprocs}")
        if self.hw_scale <= 0:
            raise ConfigError(
                f"Scale.hw_scale must be positive, got {self.hw_scale}"
            )
        if "engine" in self.extra:
            try:
                resolve_engine(str(self.extra["engine"]))
            except ValueError as exc:
                raise ConfigError(str(exc)) from None

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's Table 1 sizes and iteration counts (slow in Python)."""
        return cls(
            n={
                "barnes-hut": 65536,
                "fmm": 65536,
                "water-spatial": 32768,
                "moldyn": 32000,
                "unstructured": 10000,
            },
            iterations={
                "barnes-hut": 6,
                "fmm": 3,
                "water-spatial": 10,
                "moldyn": 40,
                "unstructured": 40,
            },
            hw_scale=1.0,
        )

    @classmethod
    def tiny(cls) -> "Scale":
        """Test-suite scale: seconds, not minutes."""
        return cls(
            n={k: 512 for k in APP_REGISTRY},
            iterations={k: 2 for k in APP_REGISTRY},
            hw_scale=128.0,
        )

    def config(self, app: str, nprocs: int | None = None) -> AppConfig:
        return AppConfig(
            n=self.n[app],
            nprocs=self.nprocs if nprocs is None else nprocs,
            iterations=self.iterations[app],
            seed=self.seed,
            extra=dict(self.extra),
        )

    def hardware(self, nprocs: int | None = None) -> HardwareParams:
        return origin2000_scaled(
            max(self.hw_scale, 1.0), self.nprocs if nprocs is None else nprocs
        )

    def cluster(self) -> ClusterParams:
        return CLUSTER_16


@dataclass
class RunRecord:
    """Metrics for one (app, version, platform) cell of the evaluation."""

    app: str
    version: str
    platform: str
    nprocs: int
    time: float  # parallel execution time, excluding reordering
    reorder_time: float  # 0 for the original version
    seq_time: float  # single-processor original baseline
    messages: int = 0
    data_mbytes: float = 0.0
    l2_misses: int = 0
    tlb_misses: int = 0
    phase_times: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Speedup including the reordering cost, as the paper computes it."""
        denom = self.time + self.reorder_time
        if denom <= 0.0:
            raise MetricError(
                f"speedup undefined for {self.app}/{self.version} on"
                f" {self.platform}: parallel time + reorder time is"
                f" {denom!r} (expected > 0)"
            )
        return self.seq_time / denom


def make_app(name: str, config: AppConfig, version: str = "original"):
    """Instantiate an application and apply a data-ordering version."""
    try:
        cls = APP_REGISTRY[name]
    except KeyError:
        raise UnknownAppError(
            f"unknown application {name!r}; expected one of {sorted(APP_REGISTRY)}"
        ) from None
    app = cls(config)
    if version != "original":
        app.reorder(version)
    return app


_cache: dict = {}


def clear_cache() -> None:
    """Drop memoized runs (tests use this to control memory).

    Only the in-process memo is dropped; an installed persistent cache
    keeps its files (that is its whole point).
    """
    _cache.clear()


def _cache_key_for(
    name: str, version: str, scale: Scale, nprocs: int, compression: str = "none"
) -> CacheKey:
    return CacheKey(
        app=name,
        version=version,
        n=scale.n[name],
        iterations=scale.iterations[name],
        nprocs=nprocs,
        seed=scale.seed,
        format_version=format_version_for(compression),
    )


def _trace_compression(rt) -> str:
    return getattr(rt, "trace_compression", "none") if rt is not None else "none"


def _trace_for(name: str, version: str, scale: Scale, nprocs: int):
    """Memoized trace for one cell; records its cache path when on disk.

    The on-disk path (stashed in the memo under a ``"tracepath"`` key) is
    what lets the parallel replay backend attach workers to the same file
    instead of pickling columns.
    """
    key = ("trace", name, version, scale.n[name], scale.iterations[name], nprocs, scale.seed)
    if key in _cache:
        return _cache[key]
    rt = get_runtime()
    ck = None
    if rt is not None and rt.cache is not None:
        ck = _cache_key_for(name, version, scale, nprocs, _trace_compression(rt))
        if rt.resume:
            trace = rt.cache.load(ck)
            if trace is not None:
                log.info("trace %s: cache hit", ck.filename())
                _cache[key] = trace
                _cache[("tracepath",) + key[1:]] = str(rt.cache.path(ck))
                return trace
    started = time.perf_counter()
    app = make_app(name, scale.config(name, nprocs), version)
    trace = app.run()
    log.info(
        "trace %s/%s p=%d n=%d: generated in %.2fs (cache miss)",
        name, version, nprocs, scale.n[name], time.perf_counter() - started,
    )
    if ck is not None:
        rt.cache.store(ck, trace, compression=_trace_compression(rt))
        _cache[("tracepath",) + key[1:]] = str(rt.cache.path(ck))
    _cache[key] = trace
    return trace


def _trace_path_for(name: str, version: str, scale: Scale, nprocs: int) -> str | None:
    """The on-disk cache path of a memoized trace, if it has one."""
    return _cache.get(
        ("tracepath", name, version, scale.n[name], scale.iterations[name],
         nprocs, scale.seed)
    )


def _reorder_time(name: str, version: str, scale: Scale, cycle_time: float) -> float:
    """Modelled cost of the one-time reordering call, amortized to the
    scaled run's share of the paper's iteration count."""
    if version == "original":
        return 0.0
    cycles = reorder_cycles(
        scale.n[name], APP_REGISTRY[name].object_size, version
    )
    amortize = min(1.0, scale.iterations[name] / PAPER_ITERATIONS[name])
    return cycles * cycle_time * amortize


def _seq_time(name: str, platform: str, scale: Scale) -> float:
    """Single-processor original run time on the given platform."""
    key = ("seq", name, platform, scale.n[name], scale.iterations[name], scale.seed)
    if key not in _cache:
        trace = _trace_for(name, "original", scale, nprocs=1)
        if platform == "origin":
            params = scale.hardware(nprocs=1)
            _cache[key] = simulate_hardware(trace, params).time
        else:
            # Uniprocessor run on a cluster node: compute only.
            params = scale.cluster()
            _cache[key] = float(trace.total_work) * params.work_cycles * params.cycle_time
    return _cache[key]


def _cell_record(
    name: str,
    version: str,
    platform: str,
    scale: Scale,
    trace,
    seq_time: float,
    trace_path: str | None = None,
) -> RunRecord:
    """Build one cell's record from an already-materialized trace.

    Pure function of its inputs — :func:`run_one` calls it with the
    memoized trace and baseline, executor workers
    (:func:`run_matrix_cell`) with cache-loaded ones; both paths produce
    identical records.  When ``trace_path`` names the cell's on-disk
    bundle and the installed runtime sets ``replay_jobs > 1``, the
    machine models fan out across worker processes
    (:mod:`repro.machines.replay`) — results are byte-identical either
    way, so the record does not depend on which path ran.
    """
    rt = get_runtime()
    replay_jobs = getattr(rt, "replay_jobs", None) if rt is not None else None
    fan_out = trace_path is not None and replay_jobs is not None and replay_jobs > 1
    if platform == "origin":
        params = scale.hardware()
        if fan_out:
            res = simulate_hardware_parallel(trace_path, params, jobs=replay_jobs)
        else:
            res = simulate_hardware(trace, params)
        return RunRecord(
            app=name,
            version=version,
            platform=platform,
            nprocs=scale.nprocs,
            time=res.time,
            reorder_time=_reorder_time(name, version, scale, params.cycle_time),
            seq_time=seq_time,
            l2_misses=res.total_l2_misses,
            tlb_misses=res.total_tlb_misses,
            phase_times=dict(res.phase_times),
        )
    params = scale.cluster()
    sim = simulate_treadmarks if platform == "treadmarks" else simulate_hlrc
    if fan_out:
        # Pre-build the interval summaries across workers; the protocol
        # model below finds them installed in the trace's decode memo.
        build_intervals_parallel(
            trace_path, params.page_size, jobs=replay_jobs, trace=trace
        )
    res = sim(trace, params)
    return RunRecord(
        app=name,
        version=version,
        platform=platform,
        nprocs=scale.nprocs,
        time=res.time,
        reorder_time=_reorder_time(name, version, scale, params.cycle_time),
        seq_time=seq_time,
        messages=res.messages,
        data_mbytes=res.data_mbytes,
        phase_times=dict(res.phase_times),
    )


def run_one(
    name: str, version: str, platform: str, scale: Scale
) -> RunRecord:
    """Run one cell of the evaluation matrix (memoized)."""
    if platform not in PLATFORMS:
        raise UnknownPlatformError(
            f"unknown platform {platform!r}; expected one of {PLATFORMS}"
        )
    key = ("run", name, version, platform, scale.n[name], scale.iterations[name], scale.nprocs, scale.seed, scale.hw_scale)
    if key in _cache:
        return _cache[key]
    started = time.perf_counter()
    trace = _trace_for(name, version, scale, scale.nprocs)
    rec = _cell_record(
        name, version, platform, scale, trace, _seq_time(name, platform, scale),
        trace_path=_trace_path_for(name, version, scale, scale.nprocs),
    )
    _cache[key] = rec
    log.info(
        "cell %s/%s/%s p=%d: done in %.2fs",
        name, version, platform, scale.nprocs, time.perf_counter() - started,
    )
    return rec


def versions_for(name: str) -> tuple[str, ...]:
    """Orderings the paper evaluates for an app, plus the original.

    Category 2 apps get both Hilbert and column; Category 1 apps get
    Hilbert (the paper's choice).
    """
    if name not in APP_REGISTRY:
        raise UnknownAppError(
            f"unknown application {name!r}; expected one of {sorted(APP_REGISTRY)}"
        )
    cls = APP_REGISTRY[name]
    if cls.category == 2:
        return ("original", "hilbert", "column")
    return ("original", "hilbert")


def _matrix_trace_cells(
    apps: tuple[str, ...], scale: Scale
) -> list[tuple[str, str, int]]:
    """Distinct (app, version, nprocs) traces the evaluation matrix needs,
    including each app's 1-processor original baseline."""
    cells: list[tuple[str, str, int]] = []
    for name in apps:
        for version in versions_for(name):
            cells.append((name, version, scale.nprocs))
        cells.append((name, "original", 1))
    seen: set[tuple[str, str, int]] = set()
    out = []
    for cell in cells:
        if cell not in seen:
            seen.add(cell)
            out.append(cell)
    return out


def prefetch_traces(
    apps: tuple[str, ...] | None = None,
    scale: Scale | None = None,
) -> int:
    """Generate the matrix's traces in parallel into the persistent cache.

    Requires an installed runtime with a cache; a no-op (returns 0)
    otherwise.  Cells already cached (or memoized in-process) are skipped
    when resuming.  Returns the number of traces generated.  Worker
    crashes, hangs, and timeouts follow the executor's retry/serial-
    fallback policy; results land in the cache file-by-file, so an
    interrupt loses at most the cells in flight.
    """
    rt = get_runtime()
    if rt is None or rt.cache is None:
        return 0
    scale = scale or Scale()
    apps = tuple(APP_REGISTRY) if apps is None else apps
    compression = _trace_compression(rt)
    tasks = []
    for name, version, nprocs in _matrix_trace_cells(apps, scale):
        memo_key = ("trace", name, version, scale.n[name],
                    scale.iterations[name], nprocs, scale.seed)
        ck = _cache_key_for(name, version, scale, nprocs, compression)
        if memo_key in _cache:
            continue
        if rt.resume and rt.cache.contains(ck):
            continue
        tasks.append(
            Task(
                key=ck.filename(),
                fn=generate_trace_into_cache,
                args=(str(rt.cache.root), name, version, scale.n[name],
                      scale.iterations[name], nprocs, scale.seed, compression),
            )
        )
    if not tasks:
        return 0
    log.info("prefetch: generating %d trace(s) with %d job(s)",
             len(tasks), rt.executor.jobs)
    run_tasks(tasks, rt.executor, fault_plan=rt.fault_plan)
    return len(tasks)


def run_matrix_cell(
    cache_root: str,
    name: str,
    version: str,
    platforms: tuple[str, ...],
    scale: Scale,
    seq_times: dict[str, float],
    compression: str = "none",
) -> tuple[list[RunRecord], tuple[int, int]]:
    """Executor worker: every platform cell for one (app, version) trace.

    The trace is mmap-loaded from the persistent ``.npt`` cache (falling
    back to in-place generation if prefetch was skipped); the sequential
    baselines arrive precomputed from the parent, which memoizes them
    across versions.  Returns records aligned with ``platforms``, plus
    the worker-side cache (hits, misses) so the parent can fold them
    into its own counters — the load happens in this process, invisible
    to the parent's ``TraceCache`` otherwise.
    """
    from ..runtime.cache import TraceCache

    cache = TraceCache(cache_root)
    ck = _cache_key_for(name, version, scale, scale.nprocs, compression)
    trace = cache.load(ck)
    if trace is None:
        app = make_app(name, scale.config(name), version)
        trace = app.run()
        cache.store(ck, trace, compression=compression)
    records = [
        _cell_record(name, version, p, scale, trace, seq_times[p],
                     trace_path=str(cache.path(ck)))
        for p in platforms
    ]
    return records, (cache.hits, cache.misses)


def _run_cells_parallel(
    cells: list[tuple[str, str, str, Scale]]
) -> list[RunRecord]:
    """Run (app, version, platform, scale) cells through the executor.

    This is the sweep planner's cell-batch path: cells are grouped by
    trace — one task per (app, version, scale), covering all its
    platforms — so independent traces run in parallel while each trace
    is still decoded once per group.  Requires an installed runtime with
    a cache.  Memoized cells are returned directly and never
    re-dispatched; fresh records land in the same memo ``run_one`` uses,
    with identical contents (same simulators, same parameters).
    """
    rt = get_runtime()
    records: dict[int, RunRecord] = {}
    groups: dict[tuple, dict] = {}
    for i, (name, version, platform, scale) in enumerate(cells):
        if platform not in PLATFORMS:
            raise UnknownPlatformError(
                f"unknown platform {platform!r}; expected one of {PLATFORMS}"
            )
        key = ("run", name, version, platform, scale.n[name],
               scale.iterations[name], scale.nprocs, scale.seed, scale.hw_scale)
        if key in _cache:
            records[i] = _cache[key]
            continue
        gkey = key[1:3] + key[4:]  # drop platform: one group per trace
        g = groups.setdefault(
            gkey, {"name": name, "version": version, "scale": scale, "cells": []}
        )
        g["cells"].append((i, platform, key))

    if groups:
        # Fan out the distinct traces first (matrix cells and their
        # 1-processor baselines), then one batched task per group.
        compression = _trace_compression(rt)
        tasks, seen = [], set()
        for g in groups.values():
            name, scale = g["name"], g["scale"]
            for version, nprocs in ((g["version"], scale.nprocs), ("original", 1)):
                ck = _cache_key_for(name, version, scale, nprocs, compression)
                fn = ck.filename()
                if fn in seen or (rt.resume and rt.cache.contains(ck)):
                    continue
                seen.add(fn)
                tasks.append(Task(
                    key=fn,
                    fn=generate_trace_into_cache,
                    args=(str(rt.cache.root), name, version, scale.n[name],
                          scale.iterations[name], nprocs, scale.seed,
                          compression),
                ))
        if tasks:
            log.info("prefetch: generating %d trace(s) with %d job(s)",
                     len(tasks), rt.executor.jobs)
            run_tasks(tasks, rt.executor, fault_plan=rt.fault_plan)

        tasks = []
        for gkey, g in groups.items():
            name, scale = g["name"], g["scale"]
            platforms = tuple(dict.fromkeys(p for _, p, _ in g["cells"]))
            seq_times = {p: _seq_time(name, p, scale) for p in platforms}
            g["platforms"] = platforms
            g["task_key"] = f"cells_{name}_{g['version']}_p{scale.nprocs}_n{scale.n[name]}"
            tasks.append(Task(
                key=g["task_key"],
                fn=run_matrix_cell,
                args=(str(rt.cache.root), name, g["version"], platforms,
                      scale, seq_times, compression),
            ))
        log.info("matrix: %d cell group(s) with %d job(s)",
                 len(tasks), rt.executor.jobs)
        results = run_tasks(tasks, rt.executor, fault_plan=rt.fault_plan)
        for g in groups.values():
            recs, (hits, misses) = results[g["task_key"]]
            rt.cache.hits += hits
            rt.cache.misses += misses
            by_platform = dict(zip(g["platforms"], recs))
            for i, platform, key in g["cells"]:
                rec = by_platform[platform]
                _cache[key] = rec
                records[i] = rec
    return [records[i] for i in range(len(cells))]


def run_suite(
    apps: tuple[str, ...] | None = None,
    platforms: tuple[str, ...] = PLATFORMS,
    scale: Scale | None = None,
) -> list[RunRecord]:
    """Run the full evaluation matrix; returns one record per cell.

    With a runtime installed (cache + ``jobs > 1``), the matrix routes
    through the sweep planner's cell-batch path: distinct traces are
    prefetched in parallel, then the machine models for independent
    traces run concurrently (one batched task per trace, all platforms).
    Serial and parallel paths produce identical records.
    """
    scale = scale or Scale()
    apps = tuple(APP_REGISTRY) if apps is None else apps
    cells = [
        (name, version, platform, scale)
        for name in apps
        for version in versions_for(name)
        for platform in platforms
    ]
    rt = get_runtime()
    if rt is not None and rt.cache is not None and rt.executor.jobs > 1:
        return _run_cells_parallel(cells)
    return [run_one(*cell) for cell in cells]
