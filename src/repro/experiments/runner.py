"""Experiment runner: app x version x platform -> paper metrics.

One :func:`run_suite` call executes an application once per data-ordering
version (sharing the trace across all three platforms, which are pure
functions of it) and once sequentially (the speedup baseline — "all
speedups are computed relative to the single-processor version of the
original benchmark").  Results are memoized in-process so that e.g. the
Figure 7 bench and the Table 2 bench do not re-run the same simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps import APP_REGISTRY, AppConfig, reorder_cycles
from ..machines.dsm import simulate_hlrc, simulate_treadmarks
from ..machines.hardware import simulate_hardware
from ..machines.params import (
    CLUSTER_16,
    ClusterParams,
    HardwareParams,
    origin2000_scaled,
)

__all__ = ["Scale", "RunRecord", "run_suite", "make_app", "clear_cache"]

PLATFORMS = ("origin", "treadmarks", "hlrc")

#: The paper's measured iteration counts (Table 1) — used to amortize the
#: one-time reordering cost when a scaled run uses fewer iterations: the
#: paper charges one reorder against a full-length run, so a run with k of
#: the paper's K iterations is charged k/K of the cost.
PAPER_ITERATIONS = {
    "barnes-hut": 6,
    "fmm": 3,
    "water-spatial": 10,
    "moldyn": 40,
    "unstructured": 40,
}


@dataclass(frozen=True)
class Scale:
    """Problem scaling for the whole evaluation.

    The paper runs 32-65 K objects for tens of iterations on real hardware;
    the pure-Python default is ~8x smaller with the cache/TLB reach of the
    simulated Origin shrunk by ``hw_scale`` to preserve working-set ratios
    (see DESIGN.md section 5).  ``paper()`` returns the full-size
    configuration.
    """

    n: dict[str, int] = field(
        default_factory=lambda: {
            "barnes-hut": 4096,
            "fmm": 4096,
            "water-spatial": 4096,
            "moldyn": 4096,
            "unstructured": 4096,
        }
    )
    iterations: dict[str, int] = field(
        default_factory=lambda: {
            "barnes-hut": 2,
            "fmm": 2,
            "water-spatial": 3,
            "moldyn": 5,
            "unstructured": 5,
        }
    )
    nprocs: int = 16
    seed: int = 42
    hw_scale: float = 16.0

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's Table 1 sizes and iteration counts (slow in Python)."""
        return cls(
            n={
                "barnes-hut": 65536,
                "fmm": 65536,
                "water-spatial": 32768,
                "moldyn": 32000,
                "unstructured": 10000,
            },
            iterations={
                "barnes-hut": 6,
                "fmm": 3,
                "water-spatial": 10,
                "moldyn": 40,
                "unstructured": 40,
            },
            hw_scale=1.0,
        )

    @classmethod
    def tiny(cls) -> "Scale":
        """Test-suite scale: seconds, not minutes."""
        return cls(
            n={k: 512 for k in APP_REGISTRY},
            iterations={k: 2 for k in APP_REGISTRY},
            hw_scale=128.0,
        )

    def config(self, app: str, nprocs: int | None = None) -> AppConfig:
        return AppConfig(
            n=self.n[app],
            nprocs=self.nprocs if nprocs is None else nprocs,
            iterations=self.iterations[app],
            seed=self.seed,
        )

    def hardware(self, nprocs: int | None = None) -> HardwareParams:
        return origin2000_scaled(
            max(self.hw_scale, 1.0), self.nprocs if nprocs is None else nprocs
        )

    def cluster(self) -> ClusterParams:
        return CLUSTER_16


@dataclass
class RunRecord:
    """Metrics for one (app, version, platform) cell of the evaluation."""

    app: str
    version: str
    platform: str
    nprocs: int
    time: float  # parallel execution time, excluding reordering
    reorder_time: float  # 0 for the original version
    seq_time: float  # single-processor original baseline
    messages: int = 0
    data_mbytes: float = 0.0
    l2_misses: int = 0
    tlb_misses: int = 0
    phase_times: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Speedup including the reordering cost, as the paper computes it."""
        denom = self.time + self.reorder_time
        return self.seq_time / denom if denom > 0 else float("inf")


def make_app(name: str, config: AppConfig, version: str = "original"):
    """Instantiate an application and apply a data-ordering version."""
    try:
        cls = APP_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; expected one of {sorted(APP_REGISTRY)}"
        ) from None
    app = cls(config)
    if version != "original":
        app.reorder(version)
    return app


_cache: dict = {}


def clear_cache() -> None:
    """Drop memoized runs (tests use this to control memory)."""
    _cache.clear()


def _trace_for(name: str, version: str, scale: Scale, nprocs: int):
    key = ("trace", name, version, scale.n[name], scale.iterations[name], nprocs, scale.seed)
    if key not in _cache:
        app = make_app(name, scale.config(name, nprocs), version)
        _cache[key] = app.run()
    return _cache[key]


def _reorder_time(name: str, version: str, scale: Scale, cycle_time: float) -> float:
    """Modelled cost of the one-time reordering call, amortized to the
    scaled run's share of the paper's iteration count."""
    if version == "original":
        return 0.0
    cycles = reorder_cycles(
        scale.n[name], APP_REGISTRY[name].object_size, version
    )
    amortize = min(1.0, scale.iterations[name] / PAPER_ITERATIONS[name])
    return cycles * cycle_time * amortize


def _seq_time(name: str, platform: str, scale: Scale) -> float:
    """Single-processor original run time on the given platform."""
    key = ("seq", name, platform, scale.n[name], scale.iterations[name], scale.seed)
    if key not in _cache:
        trace = _trace_for(name, "original", scale, nprocs=1)
        if platform == "origin":
            params = scale.hardware(nprocs=1)
            _cache[key] = simulate_hardware(trace, params).time
        else:
            # Uniprocessor run on a cluster node: compute only.
            params = scale.cluster()
            _cache[key] = float(trace.total_work) * params.work_cycles * params.cycle_time
    return _cache[key]


def run_one(
    name: str, version: str, platform: str, scale: Scale
) -> RunRecord:
    """Run one cell of the evaluation matrix (memoized)."""
    if platform not in PLATFORMS:
        raise ValueError(f"unknown platform {platform!r}; expected one of {PLATFORMS}")
    key = ("run", name, version, platform, scale.n[name], scale.iterations[name], scale.nprocs, scale.seed, scale.hw_scale)
    if key in _cache:
        return _cache[key]
    trace = _trace_for(name, version, scale, scale.nprocs)
    if platform == "origin":
        params = scale.hardware()
        res = simulate_hardware(trace, params)
        reorder_time = _reorder_time(name, version, scale, params.cycle_time)
        rec = RunRecord(
            app=name,
            version=version,
            platform=platform,
            nprocs=scale.nprocs,
            time=res.time,
            reorder_time=reorder_time,
            seq_time=_seq_time(name, platform, scale),
            l2_misses=res.total_l2_misses,
            tlb_misses=res.total_tlb_misses,
            phase_times=dict(res.phase_times),
        )
    else:
        params = scale.cluster()
        sim = simulate_treadmarks if platform == "treadmarks" else simulate_hlrc
        res = sim(trace, params)
        reorder_time = _reorder_time(name, version, scale, params.cycle_time)
        rec = RunRecord(
            app=name,
            version=version,
            platform=platform,
            nprocs=scale.nprocs,
            time=res.time,
            reorder_time=reorder_time,
            seq_time=_seq_time(name, platform, scale),
            messages=res.messages,
            data_mbytes=res.data_mbytes,
            phase_times=dict(res.phase_times),
        )
    _cache[key] = rec
    return rec


def versions_for(name: str) -> tuple[str, ...]:
    """Orderings the paper evaluates for an app, plus the original.

    Category 2 apps get both Hilbert and column; Category 1 apps get
    Hilbert (the paper's choice).
    """
    cls = APP_REGISTRY[name]
    if cls.category == 2:
        return ("original", "hilbert", "column")
    return ("original", "hilbert")


def run_suite(
    apps: tuple[str, ...] | None = None,
    platforms: tuple[str, ...] = PLATFORMS,
    scale: Scale | None = None,
) -> list[RunRecord]:
    """Run the full evaluation matrix; returns one record per cell."""
    scale = scale or Scale()
    apps = tuple(APP_REGISTRY) if apps is None else apps
    out = []
    for name in apps:
        for version in versions_for(name):
            for platform in platforms:
                out.append(run_one(name, version, platform, scale))
    return out
