"""Generators for every figure of the paper's evaluation.

Each ``fig*`` function returns plain data (arrays/dicts) that the benchmark
harness prints as the same series the paper plots; rendering helpers live in
:mod:`repro.experiments.report`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps import AppConfig
from ..apps.distributions import two_plummer
from ..apps.moldyn import Moldyn
from ..apps.octree import build_octree
from ..core.keys import key_generator
from ..core.reorder import reorder as compute_reordering
from .runner import Scale, run_one, versions_for

__all__ = [
    "barnes_update_pages",
    "fig1_fig4",
    "fig2_fig5",
    "fig3",
    "fig6",
    "fig7",
    "fig8_fig9",
]


def _barnes_owner(
    pos: np.ndarray, nprocs: int, leaf_capacity: int = 8
) -> np.ndarray:
    """Which processor updates each body: in-order tree partition.

    The lightweight core of the Barnes-Hut partitioning step (uniform
    weights — the paper's figures use the second iteration, by which point
    weights matter little for *which pages* are updated).
    """
    tree = build_octree(pos, leaf_capacity=leaf_capacity)
    order = tree.inorder_bodies()
    owner = np.empty(pos.shape[0], dtype=np.int64)
    bounds = (np.arange(nprocs + 1) * order.shape[0]) // nprocs
    for p in range(nprocs):
        owner[order[bounds[p] : bounds[p + 1]]] = p
    return owner


def barnes_update_pages(
    n: int,
    nprocs: int,
    *,
    seed: int = 42,
    version: str = "original",
    object_size: int = 96,
    page_size: int = 4096,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-body (page, updating processor) for the Barnes-Hut particle array.

    The data behind Figures 1/4 (the update map) and 2/5 (sharer counts).
    """
    pos = two_plummer(n, seed)
    if version != "original":
        r = compute_reordering(version, coords=pos)
        pos = r.apply(pos)
    owner = _barnes_owner(pos, nprocs)
    page = (np.arange(n, dtype=np.int64) * object_size) // page_size
    return page, owner


def fig1_fig4(
    n: int = 168,
    nprocs: int = 4,
    *,
    seed: int = 42,
    object_size: int = 96,
    page_size: int = 4096,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Figures 1 and 4: which pages each of 4 processors updates.

    The paper's example: 168 particles of 96 bytes filling four 4 KB pages
    (42 per page), before and after Hilbert reordering.  Returns
    ``{version: (page_of_body, owner_of_body)}``.
    """
    return {
        v: barnes_update_pages(
            n, nprocs, seed=seed, version=v, object_size=object_size, page_size=page_size
        )
        for v in ("original", "hilbert")
    }


def fig2_fig5(
    n: int = 32768,
    procs: tuple[int, ...] = (2, 4, 8, 16),
    *,
    seed: int = 42,
    object_size: int = 208,
    page_size: int = 8192,
) -> dict[str, dict[int, np.ndarray]]:
    """Figures 2 and 5: processors sharing each particle-array page.

    Paper setup: 32768 bodies in 384 8 KB pages (hence 208-byte effective
    records), on 2-16 processors, original versus Hilbert order.  Returns
    ``{version: {nprocs: sharers_per_page}}``.
    """
    out: dict[str, dict[int, np.ndarray]] = {}
    for version in ("original", "hilbert"):
        per_p: dict[int, np.ndarray] = {}
        for nprocs in procs:
            page, owner = barnes_update_pages(
                n,
                nprocs,
                seed=seed,
                version=version,
                object_size=object_size,
                page_size=page_size,
            )
            npages = int(page.max()) + 1
            sharers = np.zeros(npages, dtype=np.int64)
            for pg in range(npages):
                sharers[pg] = np.unique(owner[page == pg]).shape[0]
            per_p[nprocs] = sharers
        out[version] = per_p
    return out


def fig3(side: int = 8) -> dict[str, np.ndarray]:
    """Figure 3: the four orderings' traversal paths on a ``side x side``
    grid — returns ``{ordering: (side*side, 2) visit sequence}``."""
    iy, ix = np.divmod(np.arange(side * side, dtype=np.int64), side)
    pts = np.stack([ix, iy], axis=1).astype(np.float64) + 0.5
    pts /= side
    out = {}
    bits = max(1, (side - 1).bit_length())
    for name in ("morton", "hilbert", "column", "row"):
        keys = key_generator(name)(pts, bits=bits)
        order = np.argsort(keys, kind="stable")
        out[name] = np.stack([ix[order], iy[order]], axis=1)
    return out


@dataclass(frozen=True)
class BoundarySummary:
    """Figure 6 metrics for one ordering of Moldyn."""

    ordering: str
    remote_partner_pages: float  # mean pages holding remote partners, per proc
    partner_procs: float  # mean distinct owning processors of partners
    remote_partners: float  # mean count of remote partner molecules


def fig6(
    n: int = 4096,
    nprocs: int = 16,
    *,
    seed: int = 42,
    page_size: int = 4096,
) -> list[BoundarySummary]:
    """Figure 6: boundary objects under Hilbert vs row/column ordering.

    For block-partitioned Moldyn, counts per processor the molecules on its
    interaction lists that belong to other processors: how many *pages*
    they span (the DSM cost) and how many *processors* own them.  The paper
    argues column ordering minimizes the latter (slabs have few neighbour
    slabs) while Hilbert's cube surfaces land on fewer pages on hardware
    but more distinct pages/processors on DSMs.
    """
    out = []
    for ordering in ("original", "column", "row", "hilbert", "morton"):
        app = Moldyn(AppConfig(n=n, nprocs=nprocs, iterations=1, seed=seed))
        if ordering != "original":
            app.reorder(ordering)
        pages_l, procs_l, count_l = [], [], []
        osize = app.object_size
        for p in range(nprocs):
            blk = app.parts[p]
            lo, hi = int(blk[0]), int(blk[-1])
            sel = (app.pairs[:, 0] >= lo) & (app.pairs[:, 0] <= hi)
            partners = np.unique(app.pairs[sel, 1])
            remote = partners[(partners < lo) | (partners > hi)]
            owner_of = np.minimum(
                (remote * nprocs) // n, nprocs - 1
            )
            pages_l.append(np.unique((remote * osize) // page_size).shape[0])
            procs_l.append(np.unique(owner_of).shape[0])
            count_l.append(remote.shape[0])
        out.append(
            BoundarySummary(
                ordering=ordering,
                remote_partner_pages=float(np.mean(pages_l)),
                partner_procs=float(np.mean(procs_l)),
                remote_partners=float(np.mean(count_l)),
            )
        )
    return out


def fig7(scale: Scale | None = None) -> dict[str, dict[str, float]]:
    """Figure 7: speedups on the (simulated) Origin 2000, 16 processors.

    Returns ``{app: {version: speedup}}`` including the reordering cost in
    the reordered versions, exactly as the paper computes it.
    """
    scale = scale or Scale()
    out: dict[str, dict[str, float]] = {}
    from ..apps import APP_REGISTRY

    for name in APP_REGISTRY:
        out[name] = {}
        for version in versions_for(name):
            rec = run_one(name, version, "origin", scale)
            out[name][version] = rec.speedup
    return out


def fig8_fig9(scale: Scale | None = None) -> dict[str, dict[str, dict[str, float]]]:
    """Figures 8 and 9: speedups on TreadMarks and HLRC, 16 processors.

    Returns ``{platform: {app: {version: speedup}}}``.
    """
    scale = scale or Scale()
    out: dict[str, dict[str, dict[str, float]]] = {}
    from ..apps import APP_REGISTRY

    for platform in ("treadmarks", "hlrc"):
        out[platform] = {}
        for name in APP_REGISTRY:
            out[platform][name] = {}
            for version in versions_for(name):
                rec = run_one(name, version, platform, scale)
                out[platform][name][version] = rec.speedup
    return out
