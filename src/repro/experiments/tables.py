"""Generators for every table of the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import APP_REGISTRY
from .runner import Scale, run_one, versions_for

__all__ = ["table1", "table2", "table3", "table4", "Table2Row", "Table3Row"]


def table1(scale: Scale | None = None) -> list[dict]:
    """Table 1: application characteristics (size, sync, object bytes)."""
    scale = scale or Scale()
    rows = []
    for name, cls in APP_REGISTRY.items():
        rows.append(
            {
                "application": cls.name,
                "size": scale.n[name],
                "iterations": scale.iterations[name],
                "sync": cls.sync,
                "object_size": cls.object_size,
                "category": cls.category,
            }
        )
    return rows


@dataclass
class Table2Row:
    """One row of Table 2 (Origin 2000 counters, 1 and 16 processors)."""

    app: str
    version: str
    reorder_time: float
    time_1p: float
    l2_misses_1p: int
    tlb_misses_1p: int
    time_16p: float
    l2_misses_16p: int
    tlb_misses_16p: int


def table2(scale: Scale | None = None) -> list[Table2Row]:
    """Table 2: execution time, reorder cost, L2 and TLB misses on the
    simulated Origin 2000, single-processor and 16-processor runs."""
    scale = scale or Scale()
    rows = []
    for name in APP_REGISTRY:
        for version in versions_for(name):
            rec16 = run_one(name, version, "origin", scale)
            scale1 = Scale(
                n=scale.n,
                iterations=scale.iterations,
                nprocs=1,
                seed=scale.seed,
                hw_scale=scale.hw_scale,
            )
            rec1 = run_one(name, version, "origin", scale1)
            rows.append(
                Table2Row(
                    app=APP_REGISTRY[name].name,
                    version=version,
                    reorder_time=rec16.reorder_time,
                    time_1p=rec1.time,
                    l2_misses_1p=rec1.l2_misses,
                    tlb_misses_1p=rec1.tlb_misses,
                    time_16p=rec16.time,
                    l2_misses_16p=rec16.l2_misses,
                    tlb_misses_16p=rec16.tlb_misses,
                )
            )
    return rows


@dataclass
class Table3Row:
    """One row of Table 3 (software DSM traffic and times, 16 processors)."""

    app: str
    version: str
    seq_time: float
    reorder_time: float
    tm_time: float
    tm_data_mbytes: float
    tm_messages: int
    hlrc_time: float
    hlrc_data_mbytes: float
    hlrc_messages: int


def table3(scale: Scale | None = None) -> list[Table3Row]:
    """Table 3: sequential time, reorder cost, and per-protocol parallel
    time / data volume / message count on TreadMarks and HLRC."""
    scale = scale or Scale()
    rows = []
    for name in APP_REGISTRY:
        for version in versions_for(name):
            tm = run_one(name, version, "treadmarks", scale)
            hl = run_one(name, version, "hlrc", scale)
            rows.append(
                Table3Row(
                    app=APP_REGISTRY[name].name,
                    version=version,
                    seq_time=tm.seq_time,
                    reorder_time=tm.reorder_time,
                    tm_time=tm.time,
                    tm_data_mbytes=tm.data_mbytes,
                    tm_messages=tm.messages,
                    hlrc_time=hl.time,
                    hlrc_data_mbytes=hl.data_mbytes,
                    hlrc_messages=hl.messages,
                )
            )
    return rows


#: Phase order of the paper's Table 4.
TABLE4_PHASES = (
    "build_tree",
    "build_list",
    "partition",
    "tree_traversal",
    "inter_particle",
    "intra_particle",
    "other",
)


def table4(scale: Scale | None = None) -> dict[str, dict[str, float]]:
    """Table 4: FMM time breakdown on TreadMarks, original vs reordered.

    Returns ``{version: {phase: seconds}}`` with a ``total`` entry.
    """
    scale = scale or Scale()
    out: dict[str, dict[str, float]] = {}
    for version in ("original", "hilbert"):
        rec = run_one("fmm", version, "treadmarks", scale)
        phases = {ph: rec.phase_times.get(ph, 0.0) for ph in TABLE4_PHASES}
        phases["total"] = rec.time
        out[version] = phases
    return out
