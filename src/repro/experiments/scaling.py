"""Processor-count scaling study.

The paper reports 16-processor numbers (plus the P ∈ {2,4,8,16} sharing
histograms of Figure 2).  This module sweeps the processor count for one
application and platform, producing classic speedup curves for the original
and reordered versions — the reordered version's curve should pull away as
P grows, since false sharing worsens with more sharers per page.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.context import get_runtime
from .runner import Scale, _run_cells_parallel, run_one

__all__ = ["ScalingPoint", "scaling_curve"]


@dataclass(frozen=True)
class ScalingPoint:
    nprocs: int
    version: str
    time: float
    speedup: float


def scaling_curve(
    app: str,
    platform: str,
    versions: tuple[str, ...] = ("original", "hilbert"),
    procs: tuple[int, ...] = (1, 2, 4, 8, 16),
    scale: Scale | None = None,
) -> list[ScalingPoint]:
    """Speedup of each version at each processor count.

    All speedups are relative to the single-processor original run, as in
    the paper.  Every (nprocs, version) point is an independent trace, so
    with a parallel runtime installed the whole curve is dispatched
    through the sweep planner's cell-batch path and the points run
    concurrently; results are identical to the serial loop.
    """
    base = scale or Scale()
    cells = []
    for p in procs:
        s = Scale(
            n=base.n,
            iterations=base.iterations,
            nprocs=p,
            seed=base.seed,
            hw_scale=base.hw_scale,
        )
        for version in versions:
            # The paper's baseline is the 1-proc original; reordered
            # single-proc runs exist (Table 2) but are not curve
            # baselines.  Still record them for completeness.
            cells.append((app, version, platform, s))
    rt = get_runtime()
    if rt is not None and rt.cache is not None and rt.executor.jobs > 1:
        records = _run_cells_parallel(cells)
    else:
        records = [run_one(*cell) for cell in cells]
    return [
        ScalingPoint(
            nprocs=cell[3].nprocs, version=cell[1],
            time=rec.time, speedup=rec.speedup,
        )
        for cell, rec in zip(cells, records)
    ]
