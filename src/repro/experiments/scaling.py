"""Processor-count scaling study.

The paper reports 16-processor numbers (plus the P ∈ {2,4,8,16} sharing
histograms of Figure 2).  This module sweeps the processor count for one
application and platform, producing classic speedup curves for the original
and reordered versions — the reordered version's curve should pull away as
P grows, since false sharing worsens with more sharers per page.
"""

from __future__ import annotations

from dataclasses import dataclass

from .runner import Scale, run_one

__all__ = ["ScalingPoint", "scaling_curve"]


@dataclass(frozen=True)
class ScalingPoint:
    nprocs: int
    version: str
    time: float
    speedup: float


def scaling_curve(
    app: str,
    platform: str,
    versions: tuple[str, ...] = ("original", "hilbert"),
    procs: tuple[int, ...] = (1, 2, 4, 8, 16),
    scale: Scale | None = None,
) -> list[ScalingPoint]:
    """Speedup of each version at each processor count.

    All speedups are relative to the single-processor original run, as in
    the paper.
    """
    base = scale or Scale()
    out: list[ScalingPoint] = []
    for p in procs:
        s = Scale(
            n=base.n,
            iterations=base.iterations,
            nprocs=p,
            seed=base.seed,
            hw_scale=base.hw_scale,
        )
        for version in versions:
            if p == 1 and version != "original":
                # The paper's baseline is the 1-proc original; reordered
                # single-proc runs exist (Table 2) but are not curve
                # baselines.  Still record them for completeness.
                pass
            rec = run_one(app, version, platform, s)
            out.append(
                ScalingPoint(
                    nprocs=p, version=version, time=rec.time, speedup=rec.speedup
                )
            )
    return out
