"""Ideal message-passing communication analysis.

The paper's related-work section frames data reordering as "an implicit
partitioning of the data": message-passing programs partition explicitly
and communicate exactly the remote values they need, while shared-memory
programs move whole consistency units.  This analyzer computes, from the
same trace, the communication an ideal message-passing execution of the
same computation partition would perform — the lower bound the DSM
protocols are chasing — and the resulting DSM *overhead factor*.

Per epoch, an object's value must be shipped to processor ``p`` iff ``p``
reads it and the last write came from another processor; aggregated
per-(producer, consumer) pair into one message per epoch (ideal
aggregation, like a Chaos inspector/executor schedule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.events import Trace
from ..trace.layout import Layout
from ..machines.dsm import DSMResult

__all__ = ["MessagePassingResult", "ideal_message_passing", "dsm_overhead"]


@dataclass(frozen=True)
class MessagePassingResult:
    """Ideal explicit-communication volume for a trace's partition."""

    nprocs: int
    messages: int  # one per (producer, consumer, epoch) with traffic
    data_bytes: int  # exactly the remote object values read
    remote_reads: int  # object-granularity remote value fetches

    @property
    def data_mbytes(self) -> float:
        return self.data_bytes / 1e6


def ideal_message_passing(
    trace: Trace, layout: Layout | None = None
) -> MessagePassingResult:
    """Compute the ideal explicit-communication schedule for ``trace``."""
    if layout is None:
        layout = Layout.for_trace(trace)
    nprocs = trace.nprocs
    # owner[region][obj] = last writer (-1 = initial data, owned nowhere:
    # modelled as free since initial data is replicated at startup).
    owners = [np.full(r.num_objects, -1, dtype=np.int64) for r in trace.regions]

    messages = 0
    data_bytes = 0
    remote_reads = 0
    for epoch in trace.epochs:
        pairs: set[tuple[int, int]] = set()
        for p in range(nprocs):
            regs, idx, wflags = epoch.flat(p)
            if not regs.shape[0]:
                continue
            reads = ~wflags
            if not reads.any():
                continue
            rregs = regs[reads]
            ridx = idx[reads]
            for region in np.unique(rregs).tolist():
                objs = np.unique(ridx[rregs == region])
                who = owners[region][objs]
                remote = (who >= 0) & (who != p)
                if remote.any():
                    nbytes = int(remote.sum()) * trace.regions[region].object_size
                    data_bytes += nbytes
                    remote_reads += int(remote.sum())
                    for q in np.unique(who[remote]).tolist():
                        pairs.add((int(q), p))
        messages += len(pairs)
        # Writes take effect at the end of the epoch (barrier semantics).
        for p in range(nprocs):
            regs, idx, wflags = epoch.flat(p)
            if wflags.any():
                wregs = regs[wflags]
                widx = idx[wflags]
                for region in np.unique(wregs).tolist():
                    owners[region][widx[wregs == region]] = p
    return MessagePassingResult(
        nprocs=nprocs,
        messages=messages,
        data_bytes=data_bytes,
        remote_reads=remote_reads,
    )


def dsm_overhead(dsm: DSMResult, ideal: MessagePassingResult) -> dict[str, float]:
    """How much more a DSM moved than the ideal explicit schedule.

    Returns data and message multipliers (>= 1 in practice; false sharing
    and page granularity are exactly what inflates them, so reordering
    drives both toward 1).
    """
    return {
        "data_factor": dsm.data_bytes / max(ideal.data_bytes, 1),
        "message_factor": dsm.messages / max(ideal.messages, 1),
    }
