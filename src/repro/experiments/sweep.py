"""Batched multi-configuration sweep planner.

A parameter-grid sweep (L2 capacities, line sizes, DSM page sizes across
apps and orderings) naively costs one full trace replay per grid point.
The machine layer already collapses each *geometry family* to one pass:

* :func:`repro.machines.hardware.simulate_hardware_sweep` reads every L2
  capacity off a stack-distance miss curve, decoding each line-size
  geometry once;
* :func:`repro.machines.dsm.simulate_dsm_sweep` builds interval
  summaries at the finest page size and folds them up the 2x ladder.

This module plans the remaining dimension: :class:`SweepPlan` takes a
:class:`SweepGrid`, groups grid points by (trace, geometry family) —
all points sharing a trace and a sweepable axis become one
:class:`SweepGroup` — and dispatches each group as one batched task
through the :mod:`repro.runtime` executor.  Workers load traces from the
persistent cache (mmap-backed ``.npt`` columns, so the fan-out does not
re-pickle multi-million-event traces) and return compact per-point row
dicts over the pipe.  Completed groups checkpoint as JSON under the
cache root; ``--resume`` skips them on the next run.

Without an installed runtime the plan runs serially in-process, sharing
:mod:`repro.experiments.runner`'s trace memo — results are identical
either way, and identical to per-point ``simulate_*`` calls (asserted in
``tests/experiments/test_sweep_plan.py`` and
``benchmarks/bench_sweep_engine.py``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..apps import APP_REGISTRY
from ..errors import ConfigError, UnknownAppError, UnknownPlatformError
from ..runtime.cache import atomic_write_text
from ..runtime.context import get_runtime
from ..runtime.executor import Task, run_tasks
from ..runtime.worker import generate_trace_into_cache
from .runner import Scale, _cache_key_for, _trace_for, make_app, versions_for

__all__ = [
    "SweepGrid",
    "SweepGroup",
    "SweepPlan",
    "grid_from_dict",
    "grid_to_dict",
    "load_group_checkpoint",
    "parse_grid",
    "run_sweep_group",
    "write_group_checkpoint",
]

log = logging.getLogger("repro.runtime")

_DSM_PLATFORMS = ("treadmarks", "hlrc")
_PLATFORMS = ("origin",) + _DSM_PLATFORMS

#: Row keys in output order (rows only carry the keys that apply to
#: their platform; the CLI renders the union of what is present).
ROW_KEYS = (
    "app", "version", "platform", "nprocs",
    "line_size", "l2_bytes", "l2_assoc", "page_size",
    "time", "l2_misses", "tlb_misses", "invalidations",
    "cold_misses", "coherence_misses", "capacity_misses",
    "messages", "data_mbytes", "page_fetches", "diff_fetches",
)


def _as_sizes(name: str, values) -> tuple[int, ...] | None:
    if values is None:
        return None
    out = tuple(int(v) for v in values)
    if not out or any(v <= 0 for v in out):
        raise ConfigError(f"SweepGrid.{name} must be positive, got {values!r}")
    return out


@dataclass(frozen=True)
class SweepGrid:
    """Cartesian parameter grid for a sweep.

    ``l2_bytes``/``line_sizes`` apply to the ``origin`` platform (one
    family per line size, capacities read off its miss curve);
    ``page_sizes`` applies to the DSM platforms (one folded interval
    ladder per trace).  ``versions=None`` means each app's paper
    orderings (:func:`repro.experiments.runner.versions_for`).  An axis
    left ``None`` sweeps just the platform's default geometry.
    """

    apps: tuple[str, ...] = ("barnes-hut",)
    versions: tuple[str, ...] | None = None
    platforms: tuple[str, ...] = ("origin",)
    l2_bytes: tuple[int, ...] | None = None
    line_sizes: tuple[int, ...] | None = None
    page_sizes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        unknown = set(self.apps) - set(APP_REGISTRY)
        if unknown:
            raise UnknownAppError(
                f"unknown application(s) in SweepGrid: {sorted(unknown)};"
                f" expected names from {sorted(APP_REGISTRY)}"
            )
        bad = set(self.platforms) - set(_PLATFORMS)
        if bad:
            raise UnknownPlatformError(
                f"unknown platform(s) in SweepGrid: {sorted(bad)};"
                f" expected names from {_PLATFORMS}"
            )
        if not self.apps or not self.platforms:
            raise ConfigError("SweepGrid needs at least one app and platform")
        for name in ("l2_bytes", "line_sizes", "page_sizes"):
            object.__setattr__(self, name, _as_sizes(name, getattr(self, name)))


def grid_to_dict(grid: SweepGrid) -> dict:
    """JSON-safe grid spec for the job-service protocol and journal."""
    return asdict(grid)


def grid_from_dict(data: dict) -> SweepGrid:
    """Rebuild a validated :class:`SweepGrid` from :func:`grid_to_dict`.

    Raises :class:`repro.errors.ConfigError` (via the SweepGrid
    constructor) on bad axes, unknown apps, or unknown platforms — the
    service returns these to the submitting client verbatim.
    """
    def names(field_name, default=None):
        v = data.get(field_name, default)
        return None if v is None else tuple(str(x) for x in v)

    def axis(field_name):
        v = data.get(field_name)
        return None if v is None else tuple(v)

    return SweepGrid(
        apps=names("apps", ("barnes-hut",)),
        versions=names("versions"),
        platforms=names("platforms", ("origin",)),
        l2_bytes=axis("l2_bytes"),
        line_sizes=axis("line_sizes"),
        page_sizes=axis("page_sizes"),
    )


# ---- group checkpoints -------------------------------------------------
#
# A completed group's rows persist as ``sweeps/<group-key>.json`` under
# the cache root.  Both the ``--resume`` path here and the job service
# treat these files as the source of result truth, so reads are
# *validated*: a torn or garbled checkpoint is moved aside (to
# ``sweeps/quarantine/``) and reported as missing, which makes resume
# regenerate exactly the damaged group and nothing else.


def write_group_checkpoint(path: Path, rows: list[dict]) -> None:
    """Atomically persist one group's result rows."""
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, json.dumps(rows))


def load_group_checkpoint(path: Path) -> list[dict] | None:
    """Validated checkpoint read: rows, or ``None`` if absent/damaged.

    Damage (unparseable JSON, or a payload that is not a list of row
    dicts) quarantines the file rather than deleting it, mirroring
    :meth:`repro.runtime.cache.TraceCache.quarantine`; concurrent movers
    are tolerated the same way (``FileNotFoundError`` means someone else
    already moved it).
    """
    path = Path(path)
    try:
        rows = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        _quarantine_checkpoint(path, f"unreadable checkpoint: {exc}")
        return None
    if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
        _quarantine_checkpoint(path, "checkpoint payload is not a row list")
        return None
    return rows


def _quarantine_checkpoint(path: Path, reason: str) -> None:
    qdir = path.parent / "quarantine"
    qdir.mkdir(parents=True, exist_ok=True)
    dest = qdir / path.name
    i = 0
    while dest.exists():
        i += 1
        dest = qdir / f"{path.stem}.{i}{path.suffix}"
    try:
        os.replace(path, dest)
    except FileNotFoundError:
        return  # a concurrent mover got here first
    atomic_write_text(dest.with_suffix(".reason.txt"), reason + "\n")
    log.warning("sweep checkpoint %s quarantined (%s)", path.name, reason)


@dataclass(frozen=True)
class SweepGroup:
    """One (trace, geometry family) batch: a single worker task.

    The whole group replays its trace once per line-size family
    (``origin``) or once per protocol (DSM) regardless of how many grid
    points it covers.
    """

    app: str
    version: str
    platform: str
    l2_bytes: tuple[int, ...] | None = None
    line_sizes: tuple[int, ...] | None = None
    page_sizes: tuple[int, ...] | None = None

    def points(self) -> int:
        if self.platform == "origin":
            return len(self.l2_bytes or (0,)) * len(self.line_sizes or (0,))
        return len(self.page_sizes or (0,))

    def key(self, scale: Scale) -> str:
        """Stable id for executor task keys and resume checkpoints."""
        blob = json.dumps(
            {
                "axes": [self.l2_bytes, self.line_sizes, self.page_sizes],
                "n": scale.n[self.app],
                "iterations": scale.iterations[self.app],
                "nprocs": scale.nprocs,
                "seed": scale.seed,
                "hw_scale": scale.hw_scale,
            },
            sort_keys=True,
        )
        digest = hashlib.sha1(blob.encode()).hexdigest()[:10]
        return f"{self.app}_{self.version}_{self.platform}_{digest}"

    def to_dict(self) -> dict:
        """JSON-safe spec (tuples become lists; inverse of from_dict)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepGroup":
        def axis(name):
            v = data.get(name)
            return None if v is None else tuple(int(x) for x in v)

        return cls(
            app=data["app"], version=data["version"],
            platform=data["platform"],
            l2_bytes=axis("l2_bytes"), line_sizes=axis("line_sizes"),
            page_sizes=axis("page_sizes"),
        )


def _group_rows(trace, group: SweepGroup, scale: Scale) -> list[dict]:
    """All grid-point rows for one group, from batched one-pass sweeps."""
    from ..machines.dsm import simulate_dsm_sweep
    from ..machines.hardware import simulate_hardware_sweep
    from ..machines.params import cluster_scaled

    head = {
        "app": group.app,
        "version": group.version,
        "platform": group.platform,
        "nprocs": scale.nprocs,
    }
    rows = []
    if group.platform == "origin":
        base = scale.hardware()
        results = simulate_hardware_sweep(
            trace, base, l2_bytes=group.l2_bytes, line_sizes=group.line_sizes
        )
        for res in results:
            rows.append({
                **head,
                "line_size": res.params.line_size,
                "l2_bytes": res.params.l2_bytes,
                "l2_assoc": res.params.l2_assoc,
                "time": res.time,
                "l2_misses": res.total_l2_misses,
                "tlb_misses": res.total_tlb_misses,
                "invalidations": int(res.invalidations.sum()),
                "cold_misses": int(res.cold_misses.sum()),
                "coherence_misses": int(res.coherence_misses.sum()),
                "capacity_misses": int(res.capacity_misses.sum()),
            })
    else:
        base = cluster_scaled(nprocs=scale.nprocs)
        sizes = group.page_sizes or (base.page_size,)
        out = simulate_dsm_sweep(
            trace, base, sizes, protocols=(group.platform,)
        )[group.platform]
        for size in sizes:
            res = out[size]
            rows.append({
                **head,
                "page_size": size,
                "time": res.time,
                "messages": res.messages,
                "data_mbytes": res.data_mbytes,
                "page_fetches": int(res.page_fetches.sum()),
                "diff_fetches": int(res.diff_fetches.sum()),
            })
    return rows


def run_sweep_group(
    cache_root: str, group: SweepGroup, scale: Scale
) -> tuple[list[dict], tuple[int, int]]:
    """Executor worker: run one (trace, geometry family) batch.

    The trace is mmap-loaded from the persistent ``.npt`` cache (workers
    never receive traces over the pipe); a cache miss — prefetch skipped
    or cache cleared underneath us — falls back to generating in place,
    so the task stays idempotent.  Returns small per-point row dicts,
    plus the worker-side cache (hits, misses) for the parent's counters.
    """
    from ..runtime.cache import TraceCache

    cache = TraceCache(cache_root)
    ck = _cache_key_for(group.app, group.version, scale, scale.nprocs)
    trace = cache.load(ck)
    if trace is None:
        app = make_app(group.app, scale.config(group.app), group.version)
        trace = app.run()
        cache.store(ck, trace)
    return _group_rows(trace, group, scale), (cache.hits, cache.misses)


@dataclass
class SweepPlan:
    """Plan and execute a parameter-grid sweep.

    ``run()`` returns one row dict per grid point, ordered by
    (app, version, platform) then row-major over the geometry axes —
    independent of how many workers ran the groups.
    """

    grid: SweepGrid
    scale: Scale = field(default_factory=Scale)

    def groups(self) -> list[SweepGroup]:
        out = []
        for app in self.grid.apps:
            versions = self.grid.versions or versions_for(app)
            for version in versions:
                for platform in self.grid.platforms:
                    if platform == "origin":
                        out.append(SweepGroup(
                            app, version, platform,
                            l2_bytes=self.grid.l2_bytes,
                            line_sizes=self.grid.line_sizes,
                        ))
                    else:
                        out.append(SweepGroup(
                            app, version, platform,
                            page_sizes=self.grid.page_sizes,
                        ))
        return out

    def run(self) -> list[dict]:
        groups = self.groups()
        rt = get_runtime()
        if rt is None or rt.cache is None:
            return [
                row
                for g in groups
                for row in _group_rows(
                    _trace_for(g.app, g.version, self.scale, self.scale.nprocs),
                    g, self.scale,
                )
            ]

        sweep_dir = Path(rt.cache.root) / "sweeps"
        done: dict[str, list[dict]] = {}
        todo: list[SweepGroup] = []
        for g in groups:
            path = sweep_dir / f"{g.key(self.scale)}.json"
            rows = load_group_checkpoint(path) if rt.resume else None
            if rows is not None:
                done[g.key(self.scale)] = rows
                log.info("sweep group %s: checkpoint hit", g.key(self.scale))
            else:
                todo.append(g)

        if todo:
            self._prefetch(todo, rt)
            tasks = [
                Task(
                    key=g.key(self.scale),
                    fn=run_sweep_group,
                    args=(str(rt.cache.root), g, self.scale),
                )
                for g in todo
            ]
            log.info("sweep: %d group(s) covering %d point(s) with %d job(s)",
                     len(tasks), sum(g.points() for g in todo), rt.executor.jobs)
            results = run_tasks(tasks, rt.executor, fault_plan=rt.fault_plan)
            for g in todo:
                rows, (hits, misses) = results[g.key(self.scale)]
                rt.cache.hits += hits
                rt.cache.misses += misses
                write_group_checkpoint(
                    sweep_dir / f"{g.key(self.scale)}.json", rows
                )
                done[g.key(self.scale)] = rows
        return [row for g in groups for row in done[g.key(self.scale)]]

    def _prefetch(self, groups: list[SweepGroup], rt) -> None:
        """Fan distinct traces out before dispatching sweep batches."""
        tasks, seen = [], set()
        for g in groups:
            ck = _cache_key_for(g.app, g.version, self.scale, self.scale.nprocs)
            fn = ck.filename()
            if fn in seen or (rt.resume and rt.cache.contains(ck)):
                continue
            seen.add(fn)
            tasks.append(Task(
                key=fn,
                fn=generate_trace_into_cache,
                args=(str(rt.cache.root), g.app, g.version,
                      self.scale.n[g.app], self.scale.iterations[g.app],
                      self.scale.nprocs, self.scale.seed),
            ))
        if tasks:
            log.info("sweep prefetch: generating %d trace(s)", len(tasks))
            run_tasks(tasks, rt.executor, fault_plan=rt.fault_plan)


_AXIS_NAMES = {
    "l2_bytes": "l2_bytes",
    "l2": "l2_bytes",
    "line_size": "line_sizes",
    "line_sizes": "line_sizes",
    "page_size": "page_sizes",
    "page_sizes": "page_sizes",
}

_SUFFIX = {"": 1, "k": 1024, "m": 1024 * 1024}


def _parse_size(text: str) -> int:
    t = text.strip().lower()
    mult = 1
    if t and t[-1] in ("k", "m"):
        mult = _SUFFIX[t[-1]]
        t = t[:-1]
    try:
        return int(t) * mult
    except ValueError:
        raise ConfigError(
            f"bad grid value {text!r}; expected an integer with optional"
            " K/M suffix"
        ) from None


def parse_grid(specs: list[str]) -> dict[str, tuple[int, ...]]:
    """Parse CLI ``--grid AXIS=V1,V2,...`` specs into SweepGrid axes.

    Axes: ``l2_bytes`` (alias ``l2``), ``line_size``, ``page_size``.
    Values accept ``K``/``M`` suffixes: ``--grid l2=256K,1M``.
    """
    axes: dict[str, tuple[int, ...]] = {}
    for spec in specs:
        name, sep, values = spec.partition("=")
        key = _AXIS_NAMES.get(name.strip().lower())
        if not sep or key is None:
            raise ConfigError(
                f"bad grid spec {spec!r}; expected AXIS=V1,V2,... with AXIS"
                f" one of {sorted(set(_AXIS_NAMES))}"
            )
        axes[key] = tuple(_parse_size(v) for v in values.split(","))
    return axes
