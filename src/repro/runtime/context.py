"""The runtime context: one object that switches resilience on.

The experiment runner consults the *installed* :class:`RuntimeContext`
(module-level, like the runner's own memoization cache) for a persistent
trace cache, executor settings for parallel trace prefetch, and an
optional fault plan (tests only).  Nothing is installed by default, so the
library behaves exactly as before unless the CLI (``--jobs``,
``--cache-dir``, ...), the benchmark harness (``REPRO_CACHE_DIR``,
``REPRO_JOBS``), or a test installs one.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from .cache import TraceCache
from .executor import ExecutorConfig
from .faults import FaultPlan

__all__ = ["RuntimeContext", "get_runtime", "set_runtime", "use_runtime"]


@dataclass
class RuntimeContext:
    """Resilience settings for experiment runs.

    ``cache=None`` disables persistence; ``resume=False`` keeps writing to
    the cache but never reads from it (forced regeneration);
    ``executor.jobs > 1`` enables parallel trace prefetch in
    :func:`repro.experiments.runner.prefetch_traces`.

    ``replay_jobs > 1`` additionally fans the *machine models* out: the
    Origin replay runs through
    :func:`repro.machines.replay.simulate_hardware_parallel` and the DSM
    interval build through
    :func:`repro.machines.replay.build_intervals_parallel`, both attaching
    to the cached ``.npt`` by path (zero-copy mapped pages, byte-identical
    results).  It only applies to cells whose trace is on disk — cells
    generated in-process replay serially.

    ``trace_compression`` selects the on-disk codec for cache stores:
    ``"none"`` writes mmap-friendly v2 bundles, ``"zlib"``/``"lz4"`` write
    chunked compressed v3 bundles (~10-50x smaller, lazily decoded).
    Compressed entries carry format version 3 in their cache key, so
    toggling the codec never mixes formats under one filename.
    """

    cache: TraceCache | None = None
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    resume: bool = True
    fault_plan: FaultPlan | None = None
    replay_jobs: int | None = None
    trace_compression: str = "none"


_current: RuntimeContext | None = None


def get_runtime() -> RuntimeContext | None:
    """The installed context, or ``None`` (plain in-process behaviour)."""
    return _current


def set_runtime(ctx: RuntimeContext | None) -> RuntimeContext | None:
    """Install ``ctx`` (or clear with ``None``); returns the previous one."""
    global _current
    previous = _current
    _current = ctx
    return previous


@contextlib.contextmanager
def use_runtime(ctx: RuntimeContext | None):
    """Temporarily install ``ctx`` (tests and one-shot scripts)."""
    previous = set_runtime(ctx)
    try:
        yield ctx
    finally:
        set_runtime(previous)
