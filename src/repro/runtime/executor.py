"""Fault-tolerant task executor.

Fans independent tasks out across worker *processes* (one process per
attempt, so a crashed or hung worker cannot take the parent down), with:

* a per-task wall-clock timeout — a worker that exceeds it is terminated
  and the attempt counts as a failure;
* bounded retry with exponential backoff and deterministic jitter
  (:func:`backoff_delay` is a pure function of the task key and attempt,
  so schedules are reproducible);
* graceful degradation — if the process pool cannot be created at all,
  or a task's workers die repeatedly, the task is re-run serially in the
  parent process; a structured :class:`repro.errors.RetryExhaustedError`
  is raised only when that last resort also fails (timeouts never fall
  back to serial: an in-process hang could never be interrupted);
* one-line progress logging per attempt (task key, attempt, duration,
  outcome) on the ``repro.runtime`` logger.

Results travel back over a pipe; tasks whose results are large should
instead persist them (e.g. into :class:`repro.runtime.cache.TraceCache`)
and return a small token — that is what the experiment runner's trace
prefetch does.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import time
import zlib
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait

from ..errors import (
    ConfigError,
    RetryExhaustedError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from . import faults as _faults
from .faults import FaultPlan

__all__ = ["ExecutorConfig", "Task", "TaskOutcome", "backoff_delay", "run_tasks"]

log = logging.getLogger("repro.runtime")


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for :func:`run_tasks`.

    ``max_retries`` counts *re*-tries: a task gets ``1 + max_retries``
    attempts before the serial fallback is considered.  ``task_timeout``
    is wall-clock seconds per attempt (``None`` disables).  ``jobs <= 1``
    runs everything serially in-process (no pool, no timeouts).
    """

    jobs: int = 1
    task_timeout: float | None = 300.0
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigError("task_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")


@dataclass(frozen=True)
class Task:
    """One unit of work: a picklable callable plus a stable string key."""

    key: str
    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


@dataclass
class TaskOutcome:
    """How one task finished (for logs and tests)."""

    key: str
    value: object
    attempts: int
    duration: float
    where: str  # "pool" | "serial" | "fallback"


def backoff_delay(config: ExecutorConfig, key: str, attempt: int) -> float:
    """Deterministic exponential backoff with jitter.

    ``attempt`` is the attempt that just *failed* (1-based).  Jitter is a
    pure function of ``(key, attempt)`` so retry schedules are reproducible
    run to run — no wall-clock or RNG state involved.
    """
    base = min(config.backoff_cap, config.backoff_base * (2.0 ** (attempt - 1)))
    frac = zlib.crc32(f"{key}:{attempt}".encode()) / 2**32
    return base * (1.0 + 0.5 * frac)


def _child_main(conn, fn, args, kwargs, fault) -> None:
    """Worker entry point: run the task, ship (status, payload) back."""
    try:
        if fault is not None:
            _faults.inject_worker_fault(fault)
        value = fn(*args, **kwargs)
        conn.send(("ok", value))
    except BaseException as exc:  # noqa: BLE001 — must not escape a worker
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Running:
    task: Task
    attempt: int
    proc: "mp.process.BaseProcess"
    conn: object
    started: float
    deadline: float | None


def _reap(r: "_Running", *, terminate: bool = False) -> None:
    """Fully release one worker: process down and joined, pipe fd closed.

    Every path that removes a worker from ``running`` must end here —
    a terminated-but-unjoined child is a zombie and an unclosed pipe end
    is a leaked file descriptor, and both accumulate across a timeout
    storm.  ``join`` escalates to SIGKILL if SIGTERM is ignored.
    """
    try:
        if terminate and r.proc.is_alive():
            r.proc.terminate()
        r.proc.join(5.0)
        if r.proc.is_alive():  # pragma: no cover — SIGTERM ignored
            r.proc.kill()
            r.proc.join(5.0)
        r.proc.close()
    except (OSError, ValueError):  # pragma: no cover — already reaped
        pass
    try:
        r.conn.close()
    except (OSError, ValueError):
        pass


class _PoolUnavailable(Exception):
    """Raised internally when worker processes cannot be started."""

    def __init__(self, message: str, task: "Task | None" = None):
        super().__init__(message)
        self.task = task


def _run_attempt_serial(task: Task, attempt: int, plan: FaultPlan) -> object:
    fault = plan.worker_fault(task.key, attempt)
    if fault is not None:
        _faults.inject_worker_fault(fault, in_process=True)
    return task.fn(*task.args, **task.kwargs)


def _serial_with_retries(
    task: Task, config: ExecutorConfig, plan: FaultPlan
) -> TaskOutcome:
    started = time.monotonic()
    last: BaseException | None = None
    for attempt in range(1, config.max_retries + 2):
        try:
            value = _run_attempt_serial(task, attempt, plan)
            duration = time.monotonic() - started
            log.info("task %s: ok (serial, attempt %d, %.2fs)",
                     task.key, attempt, duration)
            return TaskOutcome(task.key, value, attempt, duration, "serial")
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 — retry boundary
            last = exc
            log.warning("task %s: attempt %d failed (serial): %s",
                        task.key, attempt, exc)
            if attempt <= config.max_retries:
                time.sleep(backoff_delay(config, task.key, attempt))
    raise RetryExhaustedError(
        f"task {task.key!r} failed after {config.max_retries + 1} serial"
        f" attempts: {last}",
        key=task.key,
        attempts=config.max_retries + 1,
        last_error=last,
    )


def run_tasks(
    tasks: Iterable[Task],
    config: ExecutorConfig | None = None,
    *,
    fault_plan: FaultPlan | None = None,
) -> dict[str, object]:
    """Run every task, fault-tolerantly; return ``{key: result}``.

    Raises :class:`RetryExhaustedError` if any task fails every attempt
    (the message names all permanently-failed keys; completed tasks keep
    their results in flight — callers that persist results per-task, like
    the trace prefetch, lose nothing).  Raises ``KeyboardInterrupt`` when
    an injected ``interrupt_after`` fires, mirroring a user Ctrl-C.
    """
    config = config or ExecutorConfig()
    plan = fault_plan or FaultPlan()
    tasks = list(tasks)
    seen: set[str] = set()
    for t in tasks:
        if t.key in seen:
            raise ValueError(f"duplicate task key {t.key!r}")
        seen.add(t.key)

    outcomes = _run_all(tasks, config, plan)
    return {o.key: o.value for o in outcomes}


def _interrupt_check(plan: FaultPlan, completed: int, running: dict) -> None:
    if plan.interrupt_after is not None and completed >= plan.interrupt_after:
        for r in running.values():
            _reap(r, terminate=True)
        raise KeyboardInterrupt(
            f"injected interrupt after {completed} completed tasks"
        )


def _run_all(
    tasks: Sequence[Task], config: ExecutorConfig, plan: FaultPlan
) -> list[TaskOutcome]:
    outcomes: list[TaskOutcome] = []
    if config.jobs <= 1 or not tasks:
        for task in tasks:
            outcomes.append(_serial_with_retries(task, config, plan))
            _interrupt_check(plan, len(outcomes), {})
        return outcomes

    try:
        ctx = mp.get_context()
    except Exception:  # pragma: no cover — platform without multiprocessing
        ctx = None
    if ctx is None:
        log.warning("process pool unavailable; degrading to serial execution")
        for task in tasks:
            outcomes.append(_serial_with_retries(task, config, plan))
            _interrupt_check(plan, len(outcomes), {})
        return outcomes

    return _run_pool(tasks, config, plan, ctx, outcomes)


def _run_pool(tasks, config, plan, ctx, outcomes) -> list[TaskOutcome]:
    pending: deque[tuple[Task, int, float]] = deque(
        (t, 1, time.monotonic()) for t in tasks
    )  # (task, attempt, first_started)
    waiting: list[tuple[float, Task, int, float]] = []  # (ready_at, ...)
    running: dict[object, _Running] = {}
    failed: dict[str, tuple[int, BaseException | str]] = {}

    def launch(task: Task, attempt: int, first_started: float) -> None:
        fault = plan.worker_fault(task.key, attempt)
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(send, task.fn, task.args, task.kwargs, fault),
            daemon=True,
        )
        try:
            proc.start()
        except OSError as exc:
            recv.close()
            send.close()
            raise _PoolUnavailable(str(exc), task) from exc
        send.close()
        now = time.monotonic()
        deadline = (
            now + config.task_timeout if config.task_timeout is not None else None
        )
        running[recv] = _Running(task, attempt, proc, recv, first_started, deadline)

    def settle_failure(r: _Running, err: BaseException | str) -> None:
        log.warning("task %s: attempt %d failed: %s", r.task.key, r.attempt, err)
        if r.attempt <= config.max_retries:
            ready_at = time.monotonic() + backoff_delay(
                config, r.task.key, r.attempt
            )
            waiting.append((ready_at, r.task, r.attempt + 1, r.started))
            return
        timed_out = isinstance(err, WorkerTimeoutError)
        crashed = isinstance(err, WorkerCrashError)
        if config.serial_fallback and crashed and not timed_out:
            log.warning(
                "task %s: workers died repeatedly; falling back to serial",
                r.task.key,
            )
            try:
                value = _run_attempt_serial(r.task, r.attempt + 1, plan)
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 — last resort failed
                failed[r.task.key] = (r.attempt + 1, exc)
                return
            duration = time.monotonic() - r.started
            log.info("task %s: ok (serial fallback, attempt %d, %.2fs)",
                     r.task.key, r.attempt + 1, duration)
            outcomes.append(
                TaskOutcome(r.task.key, value, r.attempt + 1, duration, "fallback")
            )
            _interrupt_check(plan, len(outcomes), running)
            return
        failed[r.task.key] = (r.attempt, err)

    def settle(conn, r: _Running) -> None:
        msg = None
        try:
            if conn.poll():
                msg = conn.recv()
        except (EOFError, OSError):
            msg = None
        r.proc.join(5.0)
        exitcode = r.proc.exitcode
        _reap(r)
        if msg is not None and msg[0] == "ok":
            duration = time.monotonic() - r.started
            log.info("task %s: ok (pool, attempt %d, %.2fs)",
                     r.task.key, r.attempt, duration)
            outcomes.append(
                TaskOutcome(r.task.key, msg[1], r.attempt, duration, "pool")
            )
            _interrupt_check(plan, len(outcomes), running)
        elif msg is not None:
            settle_failure(r, msg[1])
        else:
            settle_failure(
                r,
                WorkerCrashError(
                    f"worker for {r.task.key!r} died without a result"
                    f" (exit code {exitcode})",
                    exitcode=exitcode,
                ),
            )

    try:
        while pending or waiting or running:
            now = time.monotonic()
            if waiting:
                still = []
                for item in waiting:
                    if item[0] <= now:
                        pending.append(item[1:])
                    else:
                        still.append(item)
                waiting[:] = still
            while pending and len(running) < config.jobs:
                launch(*pending.popleft())
            if not running:
                if waiting:
                    time.sleep(max(0.0, min(w[0] for w in waiting) - now))
                continue

            horizon: float | None = None
            deadlines = [r.deadline for r in running.values() if r.deadline]
            if deadlines:
                horizon = min(deadlines)
            if waiting:
                soonest = min(w[0] for w in waiting)
                horizon = soonest if horizon is None else min(horizon, soonest)
            timeout = (
                max(0.0, horizon - time.monotonic()) if horizon is not None else None
            )
            ready = _conn_wait(list(running), timeout)
            for conn in ready:
                r = running.pop(conn)
                settle(conn, r)
            now = time.monotonic()
            for conn, r in list(running.items()):
                if r.deadline is not None and now >= r.deadline:
                    running.pop(conn)
                    _reap(r, terminate=True)
                    settle_failure(
                        r,
                        WorkerTimeoutError(
                            f"worker for {r.task.key!r} exceeded"
                            f" {config.task_timeout:.1f}s and was terminated"
                        ),
                    )
    except _PoolUnavailable as exc:
        log.warning("cannot start worker processes (%s);"
                    " degrading to serial execution", exc)
        leftovers = [item[0] for item in pending] + [w[1] for w in waiting]
        if exc.task is not None:
            leftovers.insert(0, exc.task)
        for r in running.values():
            _reap(r, terminate=True)
            leftovers.append(r.task)
        done = {o.key for o in outcomes}
        for task in leftovers:
            if task.key in done or task.key in failed:
                continue
            outcomes.append(_serial_with_retries(task, config, plan))
            _interrupt_check(plan, len(outcomes), {})
    except BaseException:
        for r in running.values():
            _reap(r, terminate=True)
        raise

    if failed:
        key, (attempts, err) = next(iter(failed.items()))
        raise RetryExhaustedError(
            f"{len(failed)} task(s) failed after exhausting retries:"
            f" {sorted(failed)}; first failure ({key!r}): {err}",
            key=key,
            attempts=attempts,
            last_error=err if isinstance(err, BaseException) else str(err),
        )
    return outcomes
