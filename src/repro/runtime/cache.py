"""Persistent, content-keyed trace cache.

Layered under the experiment runner's in-process memoization: every trace
is keyed by the full tuple that determines it — ``(app, version, n,
iterations, nprocs, seed)`` plus the on-disk format version — so an
interrupted paper-scale run resumes from the cells that already finished,
and a cache populated at one scale can never satisfy another.

Layout (all inside the cache root)::

    <root>/
        barnes-hut__hilbert__n4096_i2_p16_s42_fv2.npt    the packed trace
        barnes-hut__hilbert__n4096_i2_p16_s42_fv2.json   sidecar: the key
        quarantine/                                      damaged entries

The sidecar records the key the entry was stored under; a load verifies it
against the requested key (catching renames, tampering, or stale layouts)
before trusting the trace file.  Any entry that fails to load — truncated,
garbled, wrong format version, key mismatch — is *quarantined* (moved
aside with a reason file) and reported as a miss, so the runner simply
regenerates it; a corrupted cache can slow a run down but never crash it.

Entries are packed mmap bundles (:mod:`repro.trace.io`): a cache hit maps
the file and returns zero-copy views, so pages are faulted in lazily as
the simulators touch them instead of deserializing the whole trace up
front.  Both the trace file (via :func:`repro.trace.io.save_trace`) and
the sidecar are written atomically, so a crash mid-store leaves either no
entry or a complete one.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

from ..errors import CacheMismatchError, ConfigError, TraceCorruptError
from ..trace.events import Trace
from ..trace.io import (
    _COMPRESSED_VERSION,
    _FORMAT_VERSION,
    TRACE_SUFFIX,
    load_trace,
    save_trace,
)

__all__ = ["CacheKey", "TraceCache", "atomic_write_text", "format_version_for"]

log = logging.getLogger("repro.runtime")


@dataclass(frozen=True)
class CacheKey:
    """Everything that determines a trace's content, plus the file format."""

    app: str
    version: str
    n: int
    iterations: int
    nprocs: int
    seed: int
    format_version: int = _FORMAT_VERSION

    def filename(self) -> str:
        return (
            f"{self.app}__{self.version}__n{self.n}_i{self.iterations}"
            f"_p{self.nprocs}_s{self.seed}_fv{self.format_version}{TRACE_SUFFIX}"
        )

    def meta(self) -> dict:
        return asdict(self)


def format_version_for(compression: str) -> int:
    """On-disk format version a store with ``compression`` will produce.

    Compressed stores write chunked v3 bundles; the version is part of the
    cache key (and filename), so an uncompressed and a compressed entry
    for the same trace never collide.
    """
    return _FORMAT_VERSION if compression == "none" else _COMPRESSED_VERSION


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp file + ``os.replace``.

    A crash mid-write leaves either the old content or the new, never a
    torn file.  Shared by the cache sidecars, sweep checkpoints, and the
    service's snapshot/quarantine files.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


_atomic_write_text = atomic_write_text  # historical private name


class TraceCache:
    """On-disk trace store keyed by :class:`CacheKey`.

    ``load`` returns ``None`` on a miss *or* on a damaged entry (which it
    quarantines); ``store`` writes atomically.  Hit/miss/quarantine
    counters make behaviour observable in tests and logs.
    """

    def __init__(self, root):
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigError(
                f"cache directory {self.root} is unusable: {exc}"
            ) from exc
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def path(self, key: CacheKey) -> Path:
        return self.root / key.filename()

    def _sidecar(self, key: CacheKey) -> Path:
        return self.path(key).with_suffix(".json")

    def contains(self, key: CacheKey) -> bool:
        return self.path(key).exists() and self._sidecar(key).exists()

    # ---- store -----------------------------------------------------------
    def store(self, key: CacheKey, trace: Trace, compression: str = "none") -> Path:
        """Atomically persist ``trace`` under ``key``; returns the path.

        ``compression`` selects the on-disk codec (see
        :func:`repro.trace.io.save_trace`); callers storing compressed
        entries should build ``key`` with
        ``format_version=format_version_for(compression)`` so the filename
        and sidecar record the format actually written.
        """
        path = self.path(key)
        save_trace(trace, path, compression=compression)  # atomic write
        _atomic_write_text(self._sidecar(key), json.dumps(key.meta(), indent=0))
        return path

    # ---- load ------------------------------------------------------------
    def load(self, key: CacheKey, mmap: bool = True) -> Trace | None:
        """Return the cached trace, or ``None`` (miss or quarantined entry).

        With ``mmap=True`` (default) a hit returns a packed trace of
        zero-copy views over the mapped file.
        """
        path = self.path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            self._check_sidecar(key)
            trace = load_trace(path, mmap=mmap)
        except TraceCorruptError as exc:
            self.quarantine(key, reason=str(exc))
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def _check_sidecar(self, key: CacheKey) -> None:
        sidecar = self._sidecar(key)
        if not sidecar.exists():
            raise CacheMismatchError(
                f"cache entry {self.path(key).name} has no sidecar metadata"
                " (interrupted store?)"
            )
        try:
            meta = json.loads(sidecar.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CacheMismatchError(
                f"cache sidecar {sidecar.name} is unreadable: {exc}"
            ) from exc
        if meta != key.meta():
            raise CacheMismatchError(
                f"cache entry {self.path(key).name} was stored under a"
                f" different key: {meta!r} != {key.meta()!r}"
            )

    # ---- quarantine ------------------------------------------------------
    def quarantine(self, key: CacheKey, reason: str = "") -> Path:
        """Move a damaged entry aside so it is regenerated, not retried.

        Tolerant of *concurrent movers*: two workers that both observe a
        damaged entry can race this call, but only the process whose
        ``os.replace`` actually moved a file writes the ``.reason.txt``
        and bumps its ``quarantined`` counter — the loser sees
        ``FileNotFoundError`` (the entry is already gone) and leaves the
        winner's quarantine files untouched.  Either way the entry is off
        the hot path and will be regenerated as a miss.
        """
        qdir = self.quarantine_dir
        qdir.mkdir(exist_ok=True)
        src = self.path(key)
        dest = qdir / src.name
        i = 0
        while dest.exists():
            i += 1
            dest = qdir / f"{src.stem}.{i}{src.suffix}"
        moved = False
        try:
            os.replace(src, dest)
            moved = True
        except FileNotFoundError:
            pass
        for extra in (self._sidecar(key),):
            try:
                os.replace(extra, dest.with_suffix(".json"))
                moved = True
            except FileNotFoundError:
                pass
        if not moved:
            # A concurrent quarantine already moved this entry; do not
            # write a reason file (it would shadow the winner's) or count
            # a quarantine that this process did not perform.
            log.info("cache: %s already quarantined by a concurrent mover",
                     src.name)
            return dest
        if reason:
            atomic_write_text(dest.with_suffix(".reason.txt"), reason + "\n")
        self.quarantined += 1
        log.warning("cache: quarantined %s (%s)", src.name,
                    reason or "unspecified damage")
        return dest

    def stats(self) -> dict[str, int]:
        """This process's counters.

        Counters are **per-process**: every worker builds its own
        ``TraceCache`` over the shared directory, so hits/misses/
        quarantines observed in a child are invisible here unless the
        caller ships them back explicitly (as the sweep workers do).
        The on-disk state is the only cross-process source of truth.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
        }
