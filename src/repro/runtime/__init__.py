"""Fault-tolerant experiment runtime.

The expensive half of every experiment is trace generation; this package
makes it restartable and crash-proof:

* :mod:`repro.runtime.executor` — fans tasks out across worker processes
  with per-task wall-clock timeouts, bounded retry with exponential
  backoff + deterministic jitter, and graceful degradation to serial
  in-process execution when the pool is unavailable or a worker dies
  repeatedly;
* :mod:`repro.runtime.cache` — a persistent, content-keyed trace cache
  layered under the experiment runner, so interrupted runs resume from
  completed cells; corrupt or version-mismatched entries are quarantined
  and regenerated instead of crashing;
* :mod:`repro.runtime.faults` — deterministic fault injection (worker
  crashes, hangs, truncated/garbled ``.npz`` files, partial writes) used
  by the test suite to prove each degradation path;
* :mod:`repro.runtime.context` — the :class:`RuntimeContext` the CLI and
  benchmark harness install to switch all of the above on.

Errors raised here are the structured hierarchy in :mod:`repro.errors`.
"""

from .cache import CacheKey, TraceCache
from .context import RuntimeContext, get_runtime, set_runtime, use_runtime
from .executor import ExecutorConfig, Task, TaskOutcome, backoff_delay, run_tasks
from .faults import FaultPlan

__all__ = [
    "CacheKey",
    "TraceCache",
    "RuntimeContext",
    "get_runtime",
    "set_runtime",
    "use_runtime",
    "ExecutorConfig",
    "Task",
    "TaskOutcome",
    "backoff_delay",
    "run_tasks",
    "FaultPlan",
]
