"""Deterministic fault injection for the resilient runtime.

Two families of faults, both fully deterministic so tests can assert exact
degradation paths:

* **process faults** — a :class:`FaultPlan` maps a task key to the fault
  each *attempt* should suffer (``"crash"``: hard exit without a result;
  ``"hang"``: sleep past any timeout; ``"error"``: raise inside the
  worker).  The executor consults the plan and the worker wrapper applies
  it.  ``interrupt_after=k`` makes the *parent* raise ``KeyboardInterrupt``
  after ``k`` tasks have completed — the "kill a run mid-matrix" scenario
  the resume tests exercise.

* **file faults** — helpers that damage a trace file (packed ``.npt``
  bundle or legacy ``.npz``) in the ways a real crash or bad disk would:
  :func:`truncate_file` (partial write), :func:`garble_file` (bit rot in
  the payload), :func:`corrupt_header` (structurally intact container,
  unparseable JSON header), and :func:`write_with_version` (a well-formed
  file claiming a different format version).

* **service faults** — :class:`FaultPlan` fields consumed by
  :mod:`repro.service`: ``worker`` doubles as "kill the worker holding a
  group's lease" (keyed by group key, indexed by lease attempt);
  ``torn_journal_appends`` tears the journal append with that sequence
  number mid-write and raises :class:`InjectedServiceCrash` (a modelled
  server crash — the chaos harness restarts the engine and recovery must
  truncate the torn tail); ``corrupt_checkpoints`` garbles a group's
  ``sweeps/*.json`` checkpoint right after it is written (silent damage
  that only the next recovery can notice); ``delayed_heartbeats`` maps a
  group key to the lease attempt whose heartbeat is suppressed, so the
  lease expires under a healthy worker and its late result arrives stale.

Service faults are *incarnation-scoped*: a chaos script passes each
engine incarnation its own plan slice, so a fault fires exactly once even
though the replayed journal re-runs the same logical operations.
"""

from __future__ import annotations

import json
import os
import time
import zipfile
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FaultPlan",
    "InjectedServiceCrash",
    "WORKER_FAULT_KINDS",
    "inject_worker_fault",
    "truncate_file",
    "garble_file",
    "corrupt_header",
    "write_with_version",
]

WORKER_FAULT_KINDS = ("crash", "hang", "error")

#: Exit code used by an injected crash, distinctive in test output.
CRASH_EXIT_CODE = 23


class InjectedServiceCrash(BaseException):
    """A modelled server crash raised by a service-level fault.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that no
    ordinary ``except Exception`` retry loop can swallow it — the chaos
    harness alone catches it and restarts the engine, exactly as a real
    crash would force a restart.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected failures.

    ``worker`` maps a task key to the sequence of faults for attempts
    1, 2, ... (``None`` or running off the end means the attempt runs
    cleanly).  ``interrupt_after`` fires a ``KeyboardInterrupt`` in the
    parent once that many tasks have completed successfully.
    """

    worker: Mapping[str, Sequence[str | None]] = field(default_factory=dict)
    interrupt_after: int | None = None
    #: Journal sequence numbers whose append is torn mid-write; the tear
    #: raises :class:`InjectedServiceCrash` (the server "died" mid-append).
    torn_journal_appends: tuple[int, ...] = ()
    #: Group keys whose checkpoint file is garbled right after writing.
    corrupt_checkpoints: tuple[str, ...] = ()
    #: Group key -> lease attempt (1-based) whose heartbeat is suppressed.
    delayed_heartbeats: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key, seq in self.worker.items():
            for kind in seq:
                if kind is not None and kind not in WORKER_FAULT_KINDS:
                    raise ValueError(
                        f"unknown worker fault {kind!r} for task {key!r};"
                        f" expected one of {WORKER_FAULT_KINDS}"
                    )
        for seq in self.torn_journal_appends:
            if not isinstance(seq, int) or seq < 1:
                raise ValueError(
                    f"torn_journal_appends entries must be positive journal"
                    f" sequence numbers, got {seq!r}"
                )
        for key, attempt in self.delayed_heartbeats.items():
            if not isinstance(attempt, int) or attempt < 1:
                raise ValueError(
                    f"delayed_heartbeats[{key!r}] must be a 1-based lease"
                    f" attempt, got {attempt!r}"
                )

    def worker_fault(self, key: str, attempt: int) -> str | None:
        """Fault to inject for ``key``'s ``attempt``-th try (1-based)."""
        seq = self.worker.get(key)
        if seq is None or attempt > len(seq):
            return None
        return seq[attempt - 1]

    # ---- service-level fault queries ----------------------------------
    def journal_torn(self, seq: int) -> bool:
        """Whether the append of journal record ``seq`` should tear."""
        return seq in self.torn_journal_appends

    def checkpoint_corrupt(self, key: str) -> bool:
        """Whether ``key``'s checkpoint should be garbled after writing."""
        return key in self.corrupt_checkpoints

    def heartbeat_delayed(self, key: str, attempt: int) -> bool:
        """Whether ``key``'s lease ``attempt`` loses its heartbeats."""
        return self.delayed_heartbeats.get(key) == attempt


def inject_worker_fault(kind: str, *, in_process: bool = False) -> None:
    """Apply a process fault.  Runs inside the worker.

    In ``in_process`` (serial-fallback) mode a ``crash`` cannot take the
    host process down, so it degrades to a raised error; a ``hang`` becomes
    a no-op (there is no supervisor to time it out).
    """
    if kind == "crash":
        if in_process:
            raise RuntimeError("injected fault: crash (serial mode)")
        os._exit(CRASH_EXIT_CODE)
    elif kind == "hang":
        if not in_process:
            time.sleep(86400.0)
    elif kind == "error":
        raise RuntimeError("injected fault: error")
    elif kind is not None:
        raise ValueError(f"unknown worker fault {kind!r}")


# ---- file faults -------------------------------------------------------


def truncate_file(path, keep_fraction: float = 0.5) -> None:
    """Cut a file to a prefix — what a non-atomic interrupted write leaves."""
    size = os.path.getsize(path)
    keep = max(1, int(size * keep_fraction))
    with open(path, "r+b") as fh:
        fh.truncate(keep)


def garble_file(path, seed: int = 0, nbytes: int = 64) -> None:
    """Overwrite bytes in the middle of a file with deterministic noise."""
    rng = np.random.default_rng(seed)
    size = os.path.getsize(path)
    start = size // 3
    noise = rng.integers(0, 256, size=min(nbytes, max(1, size - start)),
                         dtype=np.uint8).tobytes()
    with open(path, "r+b") as fh:
        fh.seek(start)
        fh.write(noise)


def corrupt_header(path) -> None:
    """Rewrite the file so its JSON header is unparseable.

    The container stays structurally valid (magic/preamble intact for a
    packed ``.npt`` bundle, valid zip for a legacy ``.npz``) — this models
    logical corruption rather than byte rot, and must still be caught as
    ``TraceCorruptError``.
    """
    with open(path, "rb") as fh:
        magic = fh.read(8)
    if magic == b"REPROTRC":
        # Scribble into the JSON header region (preamble = 8-byte magic +
        # 8-byte header length, header follows).
        with open(path, "r+b") as fh:
            fh.seek(16)
            fh.write(b"{not json!")
        return
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    arrays["header"] = np.frombuffer(b"{not json!", dtype=np.uint8)
    # Write through a handle: np.savez_compressed would append ".npz" to a
    # bare path, missing the original file.
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def write_with_version(path, version: int, nprocs: int = 1) -> None:
    """Write a minimal well-formed trace file claiming ``version``."""
    header = {"version": version, "nprocs": nprocs, "regions": [], "epochs": []}
    with open(path, "wb") as fh:
        np.savez_compressed(
            fh,
            header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        )


def is_valid_zip(path) -> bool:
    """Cheap structural check used in tests (not a content check)."""
    try:
        with zipfile.ZipFile(path) as zf:
            return zf.testzip() is None
    except (zipfile.BadZipFile, OSError):
        return False
