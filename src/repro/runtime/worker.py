"""Picklable worker entry points for the fault-tolerant executor.

Workers never ship a trace back over the result pipe — traces are large
and the pipe is a failure surface.  Instead each worker writes its result
into the persistent :class:`repro.runtime.cache.TraceCache` (atomically)
and returns the cache filename as a small token; the parent then *mmaps*
the packed bundle out of the cache — no trace is ever pickled across a
process boundary.  This also means a run killed between worker completion
and parent bookkeeping loses nothing: the cell is already on disk.
"""

from __future__ import annotations

__all__ = ["generate_trace_into_cache"]


def generate_trace_into_cache(
    cache_root: str,
    app: str,
    version: str,
    n: int,
    iterations: int,
    nprocs: int,
    seed: int,
    compression: str = "none",
) -> str:
    """Generate one (app, version, nprocs) trace and persist it.

    ``compression`` selects the cache entry's on-disk codec (chunked v3
    bundles for ``"zlib"``/``"lz4"``); the cache key's format version
    follows the codec, so compressed and uncompressed entries coexist.

    Imports happen inside the function so the module stays picklable and
    cheap to import in spawn-started workers.
    """
    from ..apps import AppConfig
    from ..experiments.runner import make_app
    from .cache import CacheKey, TraceCache, format_version_for

    cache = TraceCache(cache_root)
    key = CacheKey(app=app, version=version, n=n, iterations=iterations,
                   nprocs=nprocs, seed=seed,
                   format_version=format_version_for(compression))
    if cache.load(key) is not None:
        return key.filename()  # another worker (or a prior run) got here first
    config = AppConfig(n=n, nprocs=nprocs, iterations=iterations, seed=seed)
    application = make_app(app, config, version)
    cache.store(key, application.run(), compression=compression)
    return key.filename()
