"""Trace statistics: page sharing, footprints, access breakdowns.

These implement the paper's diagnostic figures directly:

* Figure 1 / Figure 4 — which pages each processor *updates* (the particle
  update map, before and after Hilbert reordering);
* Figure 2 / Figure 5 — the number of processors sharing (updating) each
  page of the particle array, before and after reordering;

plus generic helpers reused by the machine models.

All helpers consume traces through ``epoch.flat(proc)`` — an O(1) view on
packed traces — and the trace-level accumulators share decoded unit
streams with the simulators through the per-trace decode memo
(:func:`repro.trace.layout.decode_memo`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .events import Epoch, Trace
from .layout import Layout, decode_memo
from .packed import PackedTrace

__all__ = [
    "page_write_sets",
    "page_read_sets",
    "page_sharers",
    "mean_sharers",
    "update_map",
    "footprint",
    "access_counts",
    "proc_unit_sets",
]


def proc_unit_sets(
    epoch: Epoch,
    layout: Layout,
    unit: int,
    *,
    writes_only: bool = False,
    reads_only: bool = False,
) -> list[np.ndarray]:
    """Per-processor sorted unique consistency-unit ids touched in ``epoch``.

    The workhorse behind both the statistics and the DSM interval models.
    """
    if writes_only and reads_only:
        raise ValueError("writes_only and reads_only are mutually exclusive")
    out: list[np.ndarray] = []
    for p in range(epoch.nprocs):
        regs, idx, writes = epoch.flat(p)
        if writes_only or reads_only:
            sel = writes if writes_only else ~writes
            regs = regs[sel]
            idx = idx[sel]
        if idx.shape[0]:
            out.append(np.unique(layout.units_batch(regs, idx, unit)))
        else:
            out.append(np.empty(0, dtype=np.int64))
    return out


def _accumulate_sharers(
    trace: Trace, layout: Layout, page_size: int, writes_only: bool
) -> dict[int, set[int]]:
    # Packed traces reuse the memoized full-stream decode (shared with the
    # simulators) and filter writes on the expanded stream; burst-list
    # traces fall back to per-epoch decoding.
    memo = decode_memo(trace) if isinstance(trace, PackedTrace) else None
    sharers: dict[int, set[int]] = {}
    for ei, epoch in enumerate(trace.epochs):
        if memo is None:
            sets = proc_unit_sets(epoch, layout, page_size, writes_only=writes_only)
        else:
            decoded = memo.epoch(layout, page_size, ei)
            sets = []
            for p in range(trace.nprocs):
                units = decoded.units[p]
                if writes_only and units.shape[0]:
                    _regs, _idx, writes = epoch.flat(p)
                    units = units[decoded.expand(p, writes)]
                sets.append(
                    np.unique(units) if units.shape[0] else np.empty(0, dtype=np.int64)
                )
        for p, pages in enumerate(sets):
            for pg in pages.tolist():
                sharers.setdefault(pg, set()).add(p)
    return sharers


def page_write_sets(trace: Trace, layout: Layout, page_size: int) -> dict[int, set[int]]:
    """Map page id -> set of processors that *write* it anywhere in the run."""
    return _accumulate_sharers(trace, layout, page_size, writes_only=True)


def page_read_sets(trace: Trace, layout: Layout, page_size: int) -> dict[int, set[int]]:
    """Map page id -> set of processors that access it anywhere in the run."""
    return _accumulate_sharers(trace, layout, page_size, writes_only=False)


def page_sharers(
    trace: Trace,
    layout: Layout,
    region: str | int,
    page_size: int,
    *,
    writes_only: bool = True,
) -> np.ndarray:
    """Processors sharing each page of a region (paper Figures 2 and 5).

    Returns one count per page of ``region``, in address order.  With
    ``writes_only`` (default) a processor counts as sharing a page if it
    *updates* any object on it — the quantity plotted by the paper, where
    false sharing is caused by concurrent writers.
    """
    if isinstance(region, str):
        region = trace.region_id(region)
    sets = (page_write_sets if writes_only else page_read_sets)(trace, layout, page_size)
    pages = layout.region_pages(region, page_size)
    return np.array([len(sets.get(int(pg), ())) for pg in pages], dtype=np.int64)


def mean_sharers(counts: np.ndarray) -> float:
    """Average sharers per page, over pages that are touched at all."""
    counts = np.asarray(counts)
    touched = counts[counts > 0]
    return float(touched.mean()) if touched.size else 0.0


def update_map(
    trace: Trace, layout: Layout, region: str | int
) -> np.ndarray:
    """Which processor updates each object of a region (paper Figures 1/4).

    Returns an ``(num_objects,)`` int array: the processor that writes each
    object (-1 if never written; if several write it, the lowest-numbered —
    in the paper's benchmarks object ownership is unique per iteration).
    """
    if isinstance(region, str):
        region = trace.region_id(region)
    n = trace.regions[region].num_objects
    owner = np.full(n, -1, dtype=np.int64)
    for epoch in trace.epochs:
        # Descending processor order so the lowest-numbered writer wins.
        for p in range(trace.nprocs - 1, -1, -1):
            regs, idx, writes = epoch.flat(p)
            sel = writes & (regs == region)
            if sel.any():
                owner[idx[sel]] = p
    return owner


def footprint(
    trace: Trace, layout: Layout, unit: int, proc: int | None = None
) -> int:
    """Number of distinct consistency units touched (by one proc or all)."""
    chunks: list[np.ndarray] = []
    for epoch in trace.epochs:
        procs = range(trace.nprocs) if proc is None else [proc]
        for p in procs:
            regs, idx, _writes = epoch.flat(p)
            if idx.shape[0]:
                chunks.append(np.unique(layout.units_batch(regs, idx, unit)))
    if not chunks:
        return 0
    return int(np.unique(np.concatenate(chunks)).shape[0])


@dataclass(frozen=True)
class AccessCounts:
    """Read/write access totals per processor."""

    reads: np.ndarray
    writes: np.ndarray

    @property
    def total(self) -> int:
        return int(self.reads.sum() + self.writes.sum())


def access_counts(trace: Trace) -> AccessCounts:
    """Count object-granularity reads and writes per processor."""
    reads = np.zeros(trace.nprocs, dtype=np.int64)
    writes = np.zeros(trace.nprocs, dtype=np.int64)
    for epoch in trace.epochs:
        for p in range(trace.nprocs):
            _regs, _idx, wflags = epoch.flat(p)
            w = int(np.count_nonzero(wflags))
            writes[p] += w
            reads[p] += wflags.shape[0] - w
    return AccessCounts(reads=reads, writes=writes)
