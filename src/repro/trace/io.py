"""Trace serialization (numpy ``.npz``).

Trace generation is the expensive half of every experiment (the apps run
real physics); the machine models are cheap pure functions.  Saving traces
lets a workflow generate once and sweep machine parameters offline, or ship
a trace to a colleague without shipping the computation.  The persistent
cache behind resumable runs (:mod:`repro.runtime.cache`) is built on this
module, which imposes two robustness requirements:

* **writes are atomic** — :func:`save_trace` writes to a temporary file in
  the destination directory and ``os.replace``-s it into place, so an
  interrupt mid-write can never leave a half-written ``.npz`` behind;
* **reads fail structurally** — :func:`load_trace` raises
  :class:`repro.errors.TraceCorruptError` (a ``ValueError`` subclass) for
  *any* unreadable, truncated, or garbled file, and
  :class:`repro.errors.TraceVersionError` for a format-version mismatch,
  so callers can quarantine-and-regenerate instead of crashing.

Format: one compressed ``.npz`` holding a small JSON header (processor
count, regions, epoch labels/work/locks) plus three flat arrays per
(epoch, processor) concatenation — burst region ids, burst lengths and
burst write flags, and the concatenated indices — so files stay compact
and loading is allocation-light.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import zipfile
import zlib

import numpy as np

from ..errors import TraceCorruptError, TraceVersionError
from .events import Burst, Epoch, RegionSpec, Trace

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1

#: Everything that can plausibly escape ``np.load``/``json``/array slicing
#: on a damaged file.  Anything else is a programming error and propagates.
_CORRUPTION_ERRORS = (
    ValueError,
    KeyError,
    IndexError,
    EOFError,
    OSError,
    zipfile.BadZipFile,
    zlib.error,
    json.JSONDecodeError,
    UnicodeDecodeError,
)


def _serialize(trace: Trace) -> dict[str, np.ndarray]:
    header = {
        "version": _FORMAT_VERSION,
        "nprocs": trace.nprocs,
        "regions": [
            {"name": r.name, "num_objects": r.num_objects, "object_size": r.object_size}
            for r in trace.regions
        ],
        "epochs": [
            {
                "label": e.label,
                "work": e.work.tolist(),
                "locks": e.lock_acquires.tolist(),
            }
            for e in trace.epochs
        ],
    }
    arrays: dict[str, np.ndarray] = {}
    for ei, epoch in enumerate(trace.epochs):
        for p in range(trace.nprocs):
            bursts = epoch.bursts[p]
            if not bursts:
                continue
            key = f"e{ei}_p{p}"
            arrays[f"{key}_regions"] = np.array(
                [b.region for b in bursts], dtype=np.int32
            )
            arrays[f"{key}_writes"] = np.array(
                [b.is_write for b in bursts], dtype=np.bool_
            )
            arrays[f"{key}_lengths"] = np.array(
                [len(b) for b in bursts], dtype=np.int64
            )
            arrays[f"{key}_indices"] = (
                np.concatenate([b.indices for b in bursts])
                if bursts
                else np.empty(0, dtype=np.int64)
            )
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    return arrays


def save_trace(trace: Trace, path) -> None:
    """Write ``trace`` to ``path`` (``.npz``, compressed) atomically.

    The bytes are written to a temporary sibling file which is fsynced and
    then ``os.replace``-d over ``path``: readers either see the old file or
    the complete new one, never a prefix.  File-like destinations are
    written directly (no atomicity to offer there).
    """
    arrays = _serialize(trace)
    if not isinstance(path, (str, os.PathLike)):
        np.savez_compressed(path, **arrays)
        return
    dest = os.fspath(path)
    if not dest.endswith(".npz"):
        dest += ".npz"  # match np.savez_compressed's filename behaviour
    dirpath = os.path.dirname(dest) or "."
    fd, tmp = tempfile.mkstemp(
        dir=dirpath, prefix=os.path.basename(dest) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, dest)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _deserialize(data) -> Trace:
    header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
    if header.get("version") != _FORMAT_VERSION:
        raise TraceVersionError(
            f"unsupported trace format version {header.get('version')!r}"
            f" (expected {_FORMAT_VERSION})"
        )
    trace = Trace(nprocs=int(header["nprocs"]))
    for r in header["regions"]:
        trace.regions.append(
            RegionSpec(r["name"], int(r["num_objects"]), int(r["object_size"]))
        )
    for ei, emeta in enumerate(header["epochs"]):
        epoch = Epoch(nprocs=trace.nprocs, label=emeta["label"])
        epoch.work = np.array(emeta["work"], dtype=np.float64)
        epoch.lock_acquires = np.array(emeta["locks"], dtype=np.int64)
        for p in range(trace.nprocs):
            key = f"e{ei}_p{p}"
            if f"{key}_regions" not in data:
                continue
            regions = data[f"{key}_regions"]
            writes = data[f"{key}_writes"]
            lengths = data[f"{key}_lengths"]
            indices = data[f"{key}_indices"]
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            for bi in range(regions.shape[0]):
                epoch.bursts[p].append(
                    Burst(
                        int(regions[bi]),
                        indices[offsets[bi] : offsets[bi + 1]],
                        bool(writes[bi]),
                    )
                )
        trace.epochs.append(epoch)
    trace.validate()
    return trace


def load_trace(path) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`repro.errors.TraceCorruptError` if the file cannot be
    parsed back into a valid trace (truncated archive, garbled bytes, bad
    header, out-of-range indices...), and its subclass
    :class:`repro.errors.TraceVersionError` on a format-version mismatch.
    A missing file still raises ``FileNotFoundError``.
    """
    try:
        with np.load(path) as data:
            return _deserialize(data)
    except TraceCorruptError:
        raise
    except FileNotFoundError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise TraceCorruptError(
            f"trace file {os.fspath(path) if isinstance(path, (str, os.PathLike)) else path!r}"
            f" is corrupt or unreadable: {type(exc).__name__}: {exc}"
        ) from exc
