"""Trace serialization: packed mmap bundles (``.npt``) + legacy ``.npz``.

Trace generation is the expensive half of every experiment (the apps run
real physics); the machine models are cheap pure functions.  Saving traces
lets a workflow generate once and sweep machine parameters offline, or ship
a trace to a colleague without shipping the computation.  The persistent
cache behind resumable runs (:mod:`repro.runtime.cache`) is built on this
module, which imposes two robustness requirements:

* **writes are atomic** — :func:`save_trace` writes to a temporary file in
  the destination directory and ``os.replace``-s it into place, so an
  interrupt mid-write can never leave a half-written file behind;
* **reads fail structurally** — :func:`load_trace` raises
  :class:`repro.errors.TraceCorruptError` (a ``ValueError`` subclass) for
  *any* unreadable, truncated, or garbled file, and
  :class:`repro.errors.TraceVersionError` for a format-version mismatch,
  so callers can quarantine-and-regenerate instead of crashing.

Packed format (version 2, the default)
--------------------------------------
A single raw binary bundle designed for ``np.memmap``::

    8 bytes   magic  b"REPROTRC"
    8 bytes   header length (little-endian uint64)
    N bytes   JSON header: version, nprocs, regions, epoch labels, and an
              array directory {name: {dtype, shape, offset}} with offsets
              relative to the 64-byte-aligned data section
    ...       raw C-order array bytes, each segment 64-byte aligned

The arrays are the columns of a :class:`repro.trace.packed.PackedTrace`
concatenated across epochs (offset tables, burst columns, work/lock
matrices), minus two deliberate omissions that keep the bundle small —
writing bytes is the dominant save cost:

* the expanded per-access ``region`` and ``is_write`` columns are *not*
  stored; they are exactly ``np.repeat(burst_region, burst_length)`` /
  ``np.repeat(burst_write, burst_length)`` and are rebuilt in one pass at
  load time;
* the access ``index`` column is stored at the narrowest safe integer
  width (``int32`` whenever every index fits, which object indices always
  do in practice) and widened back to ``int64`` on load.

Loading with ``mmap=True`` (the default for on-disk files) maps each
stored segment with ``np.memmap``: no decompression, no per-burst object
construction.  Columns stored at their in-memory width — including the
narrowed ``index`` — are zero-copy views into the mapping, faulted in
lazily as the simulators touch them (the decode arithmetic upcasts
element-wise, so the narrow column is never widened into a copy).

Compressed format (version 3)
-----------------------------
``save_trace(..., compression="zlib"|"lz4")`` writes the same preamble and
JSON header but stores the big columns as **per-epoch compressed chunks**:
the ``index`` column is delta-encoded (consecutive differences, which are
small for coherent traversals) and narrowed to the smallest integer dtype
before compression; the per-burst columns are narrowed likewise.  Each
chunk records its byte extent, element count, and a CRC-32.  Loading a v3
file builds a :class:`LazyPackedTrace` whose epochs decode chunks on
demand through an LRU-bounded :class:`_ChunkStore` — replay touches one
epoch at a time, so peak memory is a handful of epochs, not the trace.
Chunk *bounds* are verified against the file size at load (truncation is
caught immediately, feeding the cache's quarantine path); CRCs are
verified at decode time.  Uncompressed files keep the v2 mmap fast path,
and v2 files remain readable forever.

Legacy format (version 1) is the compressed ``.npz`` of earlier releases;
:func:`load_trace` sniffs the magic and still reads it (eagerly), and
:func:`save_trace_npz` still writes it — the pipeline benchmark uses that
as its burst-list baseline.
"""

from __future__ import annotations

import contextlib
import io as _io
import json
import os
import struct
import tempfile
import zipfile
import zlib
from collections import OrderedDict

import numpy as np

from ..errors import ConfigError, TraceCorruptError, TraceVersionError
from .events import Burst, Epoch, RegionSpec, Trace
from .packed import PackedEpoch, PackedTrace, pack_trace

try:  # optional codec; the container may not ship it
    import lz4.frame as _lz4  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - environment-dependent
    _lz4 = None

__all__ = [
    "save_trace",
    "save_trace_npz",
    "load_trace",
    "LazyPackedTrace",
    "TRACE_SUFFIX",
    "COMPRESSION_CODECS",
]

_FORMAT_VERSION = 2
_COMPRESSED_VERSION = 3
_LEGACY_NPZ_VERSION = 1
_MAGIC = b"REPROTRC"
_ALIGN = 64
#: Canonical file suffix for packed trace bundles.
TRACE_SUFFIX = ".npt"

#: Accepted values for ``save_trace``'s ``compression`` knob.
COMPRESSION_CODECS = ("none", "zlib", "lz4")

#: dtypes a packed bundle may declare; anything else is corruption.
_ALLOWED_DTYPES = {
    "<i8": np.int64,
    "<i4": np.int32,
    "|b1": np.bool_,
    "<f8": np.float64,
}

#: dtypes a v3 chunk may declare (narrowed integers + booleans).
_CHUNK_DTYPES = {"|i1", "<i2", "<i4", "<i8", "|b1"}

#: The per-epoch chunked columns of a v3 bundle, in storage order.
_CHUNK_COLUMNS = ("index", "burst_region", "burst_write", "burst_length")

#: Everything that can plausibly escape ``np.load``/``json``/array slicing
#: on a damaged file.  Anything else is a programming error and propagates.
_CORRUPTION_ERRORS = (
    ValueError,
    KeyError,
    TypeError,
    IndexError,
    EOFError,
    OSError,
    struct.error,
    zipfile.BadZipFile,
    zlib.error,
    json.JSONDecodeError,
    UnicodeDecodeError,
)


def _align_up(n: int) -> int:
    return -(-n // _ALIGN) * _ALIGN


# --------------------------------------------------------------------------
# Packed (version 2) writer
# --------------------------------------------------------------------------


def _pack_arrays(trace: PackedTrace) -> dict[str, np.ndarray]:
    """Concatenate the per-epoch columns into the bundle's array set."""
    epochs = trace.epochs
    E = len(epochs)
    P = trace.nprocs

    def cat(parts: list[np.ndarray], dtype) -> np.ndarray:
        return np.concatenate(parts) if parts else np.empty(0, dtype=dtype)

    def stack(parts: list[np.ndarray], width: int, dtype) -> np.ndarray:
        return np.stack(parts) if parts else np.zeros((0, width), dtype=dtype)

    epoch_access_starts = np.zeros(E + 1, dtype=np.int64)
    epoch_burst_starts = np.zeros(E + 1, dtype=np.int64)
    for ei, e in enumerate(epochs):
        epoch_access_starts[ei + 1] = epoch_access_starts[ei] + e.offsets[-1]
        epoch_burst_starts[ei + 1] = epoch_burst_starts[ei] + e.burst_offsets[-1]

    index = cat([e.index for e in epochs], np.int64)
    if index.size:
        info = np.iinfo(np.int32)
        lo, hi = int(index.min()), int(index.max())
        if info.min <= lo and hi <= info.max:
            index = index.astype(np.int32)

    return {
        "index": index,
        "access_offsets": stack([e.offsets for e in epochs], P + 1, np.int64),
        "burst_region": cat([e.burst_region for e in epochs], np.int64),
        "burst_write": cat([e.burst_write for e in epochs], np.bool_),
        "burst_length": cat([e.burst_length for e in epochs], np.int64),
        "burst_offsets": stack([e.burst_offsets for e in epochs], P + 1, np.int64),
        "epoch_access_starts": epoch_access_starts,
        "epoch_burst_starts": epoch_burst_starts,
        "work": stack([e.work for e in epochs], P, np.float64),
        "locks": stack([e.lock_acquires for e in epochs], P, np.int64),
    }


def _write_packed(fh, trace: PackedTrace) -> None:
    arrays = _pack_arrays(trace)
    directory: dict[str, dict] = {}
    offset = 0
    for name, arr in arrays.items():
        offset = _align_up(offset)
        directory[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
        }
        offset += arr.nbytes
    header = {
        "version": _FORMAT_VERSION,
        "nprocs": trace.nprocs,
        "regions": [
            {"name": r.name, "num_objects": r.num_objects, "object_size": r.object_size}
            for r in trace.regions
        ],
        "labels": [e.label for e in trace.epochs],
        "arrays": directory,
        "data_bytes": offset,
    }
    hbytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    fh.write(_MAGIC)
    fh.write(struct.pack("<Q", len(hbytes)))
    fh.write(hbytes)
    pos = len(_MAGIC) + 8 + len(hbytes)
    fh.write(b"\0" * (_align_up(pos) - pos))
    written = 0
    for name, arr in arrays.items():
        pad = directory[name]["offset"] - written
        if pad:
            fh.write(b"\0" * pad)
            written += pad
        data = np.ascontiguousarray(arr).tobytes()
        fh.write(data)
        written += len(data)


# --------------------------------------------------------------------------
# Compressed chunked (version 3) writer
# --------------------------------------------------------------------------


def _codec_compress(codec: str):
    """The compress function for ``codec``, or a structured error."""
    if codec == "zlib":
        return lambda data: zlib.compress(data, 6)
    if codec == "lz4":
        if _lz4 is None:
            raise ConfigError(
                "trace compression 'lz4' requires the lz4 package, which is"
                " not installed; use 'zlib' or 'none'"
            )
        return _lz4.compress
    raise ConfigError(
        f"unknown trace compression {codec!r}"
        f" (choose from {', '.join(COMPRESSION_CODECS)})"
    )


def _codec_decompress(codec: str):
    if codec == "zlib":
        return zlib.decompress
    if codec == "lz4":
        if _lz4 is None:
            # Not corruption: the file is fine, this environment cannot
            # read it.  ConfigError propagates instead of triggering the
            # cache's quarantine-and-regenerate path.
            raise ConfigError(
                "trace file is lz4-compressed but the lz4 package is not"
                " installed"
            )
        return _lz4.decompress
    raise TraceCorruptError(f"packed trace declares unknown codec {codec!r}")


def _narrow_int(arr: np.ndarray) -> np.ndarray:
    """Smallest signed-integer copy of ``arr`` that holds every value."""
    arr = np.asarray(arr, dtype=np.int64)
    if arr.size == 0:
        return arr.astype(np.int8)
    lo, hi = int(arr.min()), int(arr.max())
    for dt in (np.int8, np.int16, np.int32):
        info = np.iinfo(dt)
        if info.min <= lo and hi <= info.max:
            return arr.astype(dt)
    return arr


def _delta_encode(idx: np.ndarray) -> np.ndarray:
    """Consecutive differences with the first value in slot 0.

    The exact inverse is ``np.cumsum(deltas, dtype=np.int64)``.  Traversal
    index streams have small steps, so the deltas narrow to int8/int16
    where the raw indices need int32 — that, more than the entropy coder,
    is where the v3 size win comes from.
    """
    idx = np.asarray(idx, dtype=np.int64)
    d = np.empty(idx.shape[0], dtype=np.int64)
    if d.shape[0]:
        d[0] = idx[0]
        np.subtract(idx[1:], idx[:-1], out=d[1:])
    return d


def _chunk_payload(epoch, name: str) -> tuple[np.ndarray, dict]:
    """Stored (narrowed/encoded) array + extra header fields for one chunk."""
    col = getattr(epoch, name)
    if name == "index":
        return _narrow_int(_delta_encode(col)), {"delta": True}
    if name == "burst_write":
        return np.ascontiguousarray(col, dtype=np.bool_), {}
    return _narrow_int(col), {}


def _write_compressed(fh, trace: PackedTrace, codec: str) -> None:
    """Write the v3 bundle: uncompressed meta arrays + per-epoch chunks."""
    compress = _codec_compress(codec)
    epochs = trace.epochs
    E = len(epochs)
    P = trace.nprocs

    def stack(parts: list[np.ndarray], width: int, dtype) -> np.ndarray:
        return np.stack(parts) if parts else np.zeros((0, width), dtype=dtype)

    epoch_access_starts = np.zeros(E + 1, dtype=np.int64)
    epoch_burst_starts = np.zeros(E + 1, dtype=np.int64)
    for ei, e in enumerate(epochs):
        epoch_access_starts[ei + 1] = epoch_access_starts[ei] + e.offsets[-1]
        epoch_burst_starts[ei + 1] = epoch_burst_starts[ei] + e.burst_offsets[-1]
    meta_arrays = {
        "access_offsets": stack([e.offsets for e in epochs], P + 1, np.int64),
        "burst_offsets": stack([e.burst_offsets for e in epochs], P + 1, np.int64),
        "epoch_access_starts": epoch_access_starts,
        "epoch_burst_starts": epoch_burst_starts,
        "work": stack([e.work for e in epochs], P, np.float64),
        "locks": stack([e.lock_acquires for e in epochs], P, np.int64),
    }
    directory: dict[str, dict] = {}
    offset = 0
    for name, arr in meta_arrays.items():
        offset = _align_up(offset)
        directory[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
        }
        offset += arr.nbytes

    chunks: dict[str, list[dict]] = {name: [] for name in _CHUNK_COLUMNS}
    payloads: list[tuple[int, bytes]] = []
    offset = _align_up(offset)
    for e in epochs:
        for name in _CHUNK_COLUMNS:
            stored, extra = _chunk_payload(e, name)
            raw = compress(np.ascontiguousarray(stored).tobytes())
            chunks[name].append(
                {
                    "offset": offset,
                    "nbytes": len(raw),
                    "dtype": stored.dtype.str,
                    "n": int(stored.shape[0]),
                    "crc": zlib.crc32(raw),
                    **extra,
                }
            )
            payloads.append((offset, raw))
            offset += len(raw)

    header = {
        "version": _COMPRESSED_VERSION,
        "codec": codec,
        "nprocs": P,
        "regions": [
            {"name": r.name, "num_objects": r.num_objects, "object_size": r.object_size}
            for r in trace.regions
        ],
        "labels": [e.label for e in epochs],
        "arrays": directory,
        "chunks": chunks,
        "data_bytes": offset,
    }
    hbytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    fh.write(_MAGIC)
    fh.write(struct.pack("<Q", len(hbytes)))
    fh.write(hbytes)
    pos = len(_MAGIC) + 8 + len(hbytes)
    fh.write(b"\0" * (_align_up(pos) - pos))
    written = 0
    for name, arr in meta_arrays.items():
        pad = directory[name]["offset"] - written
        if pad:
            fh.write(b"\0" * pad)
            written += pad
        data = np.ascontiguousarray(arr).tobytes()
        fh.write(data)
        written += len(data)
    for chunk_offset, raw in payloads:
        pad = chunk_offset - written
        if pad:
            fh.write(b"\0" * pad)
            written += pad
        fh.write(raw)
        written += len(raw)


def save_trace(trace: Trace, path, compression: str = "none") -> None:
    """Write ``trace`` to ``path`` as a packed bundle, atomically.

    Burst-list traces are packed first (:func:`repro.trace.packed.pack_trace`);
    packed traces serialize without copying their columns.  The bytes go to
    a temporary sibling file which is fsynced and then ``os.replace``-d
    over ``path``: readers either see the old file or the complete new one,
    never a prefix.  File-like destinations are written directly (no
    atomicity to offer there).  By convention packed bundles use the
    ``.npt`` suffix, but no suffix is imposed.

    ``compression="none"`` (default) writes the mmap-friendly v2 bundle;
    ``"zlib"`` (always available) or ``"lz4"`` (if the package is
    installed) writes the chunked v3 bundle — roughly an order of
    magnitude smaller, loaded lazily per epoch.  Unknown or unavailable
    codecs raise :class:`repro.errors.ConfigError`.
    """
    if compression not in COMPRESSION_CODECS:
        raise ConfigError(
            f"unknown trace compression {compression!r}"
            f" (choose from {', '.join(COMPRESSION_CODECS)})"
        )
    packed = pack_trace(trace)
    if compression == "none":
        writer = _write_packed
    else:
        _codec_compress(compression)  # fail fast on unavailable codecs
        writer = lambda fh, tr: _write_compressed(fh, tr, compression)  # noqa: E731
    if not isinstance(path, (str, os.PathLike)):
        writer(path, packed)
        return
    dest = os.fspath(path)
    dirpath = os.path.dirname(dest) or "."
    fd, tmp = tempfile.mkstemp(
        dir=dirpath, prefix=os.path.basename(dest) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            writer(fh, packed)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, dest)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


# --------------------------------------------------------------------------
# Packed (version 2) reader
# --------------------------------------------------------------------------


def _parse_packed_header(blob: bytes) -> tuple[dict, int]:
    """Validate magic + header; returns (header, data_start)."""
    if len(blob) < len(_MAGIC) + 8:
        raise TraceCorruptError("packed trace file shorter than its preamble")
    (hlen,) = struct.unpack_from("<Q", blob, len(_MAGIC))
    start = len(_MAGIC) + 8
    if hlen > len(blob) - start:
        raise TraceCorruptError("packed trace header extends past end of file")
    header = json.loads(blob[start : start + hlen].decode("utf-8"))
    if not isinstance(header, dict):
        raise TraceCorruptError("packed trace header is not a JSON object")
    version = header.get("version")
    if version not in (_FORMAT_VERSION, _COMPRESSED_VERSION):
        raise TraceVersionError(
            f"unsupported trace format version {version!r}"
            f" (expected {_FORMAT_VERSION} or {_COMPRESSED_VERSION})"
        )
    return header, _align_up(start + hlen)


def _packed_array(header: dict, name: str, getter, file_bytes: int, data_start: int):
    """One array from the bundle directory, shape/dtype/bounds checked."""
    spec = header["arrays"][name]
    dtype = np.dtype(str(spec["dtype"]))
    if str(spec["dtype"]) not in _ALLOWED_DTYPES:
        raise TraceCorruptError(f"packed trace array {name!r} has dtype {spec['dtype']!r}")
    shape = tuple(int(s) for s in spec["shape"])
    if any(s < 0 for s in shape):
        raise TraceCorruptError(f"packed trace array {name!r} has negative shape")
    count = int(np.prod(shape)) if shape else 1
    offset = int(spec["offset"])
    if offset < 0 or data_start + offset + count * dtype.itemsize > file_bytes:
        raise TraceCorruptError(f"packed trace array {name!r} extends past end of file")
    if count == 0:
        return np.empty(shape, dtype=dtype)
    return getter(dtype, shape, data_start + offset, count)


def _assemble_packed(header: dict, fetch) -> PackedTrace:
    """Build a :class:`PackedTrace` of views over the fetched arrays."""
    nprocs = int(header["nprocs"])
    labels = header["labels"]
    if not isinstance(labels, list):
        raise TraceCorruptError("packed trace header has no epoch label list")
    E = len(labels)

    # ``index`` stays at its stored width (int32 in practice): the decode
    # arithmetic upcasts element-wise, so widening here would only add a
    # full-column copy — and break cross-process page sharing for the
    # parallel replay workers, which rely on every worker mapping the same
    # read-only file pages.
    index = fetch("index")
    access_offsets = fetch("access_offsets")
    burst_region = fetch("burst_region")
    burst_write = fetch("burst_write")
    burst_length = fetch("burst_length")
    burst_offsets = fetch("burst_offsets")
    eas = fetch("epoch_access_starts")
    ebs = fetch("epoch_burst_starts")
    work = fetch("work")
    locks = fetch("locks")

    if access_offsets.shape != (E, nprocs + 1) or burst_offsets.shape != (E, nprocs + 1):
        raise TraceCorruptError("packed trace offset tables have wrong shape")
    # The per-access region/write columns are not stored; PackedEpoch
    # derives them lazily from the burst metadata on first use (each
    # burst's attributes repeated over its length), so only their
    # consistency is checked here.
    blen = np.asarray(burst_length, dtype=np.int64)
    if blen.size and int(blen.min()) < 0:
        raise TraceCorruptError("packed trace has negative burst lengths")
    if int(blen.sum()) != index.shape[0]:
        raise TraceCorruptError(
            "packed trace burst lengths do not tile the access columns"
        )
    if work.shape != (E, nprocs) or locks.shape != (E, nprocs):
        raise TraceCorruptError("packed trace work/lock tables have wrong shape")
    for name, starts, col in (
        ("epoch_access_starts", eas, index),
        ("epoch_burst_starts", ebs, burst_region),
    ):
        if starts.shape != (E + 1,):
            raise TraceCorruptError(f"packed trace {name} has wrong shape")
        if E >= 0 and (
            (starts.shape[0] and starts[0] != 0)
            or (np.diff(starts) < 0).any()
            or (starts.shape[0] and int(starts[-1]) != col.shape[0])
        ):
            raise TraceCorruptError(f"packed trace {name} do not tile the columns")

    trace = PackedTrace(nprocs=nprocs)
    for r in header["regions"]:
        trace.regions.append(
            RegionSpec(str(r["name"]), int(r["num_objects"]), int(r["object_size"]))
        )
    for ei in range(E):
        lo, hi = int(eas[ei]), int(eas[ei + 1])
        blo, bhi = int(ebs[ei]), int(ebs[ei + 1])
        trace.epochs.append(
            PackedEpoch(
                nprocs=nprocs,
                label=str(labels[ei]),
                offsets=access_offsets[ei],
                index=index[lo:hi],
                burst_offsets=burst_offsets[ei],
                burst_region=burst_region[blo:bhi],
                burst_write=burst_write[blo:bhi],
                burst_length=burst_length[blo:bhi],
                work=work[ei],
                lock_acquires=locks[ei],
            )
        )
    return trace


def _load_packed_path(path: str, mmap: bool) -> PackedTrace:
    file_bytes = os.path.getsize(path)
    with open(path, "rb") as fh:
        preamble = fh.read(len(_MAGIC) + 8)
        if len(preamble) < len(_MAGIC) + 8:
            raise TraceCorruptError("packed trace file shorter than its preamble")
        (hlen,) = struct.unpack_from("<Q", preamble, len(_MAGIC))
        if hlen > file_bytes:
            raise TraceCorruptError("packed trace header extends past end of file")
        blob = preamble + fh.read(hlen)
    header, data_start = _parse_packed_header(blob)
    if header["version"] == _COMPRESSED_VERSION:
        return _assemble_compressed(header, data_start, file_bytes, path=path)

    if mmap:
        def getter(dtype, shape, abs_offset, count):
            return np.memmap(path, dtype=dtype, mode="r", offset=abs_offset, shape=shape)
    else:
        def getter(dtype, shape, abs_offset, count):
            with open(path, "rb") as fh:
                fh.seek(abs_offset)
                arr = np.fromfile(fh, dtype=dtype, count=count)
            if arr.shape[0] != count:
                raise TraceCorruptError("packed trace array truncated")
            return arr.reshape(shape)

    fetch = lambda name: _packed_array(header, name, getter, file_bytes, data_start)  # noqa: E731
    return _assemble_packed(header, fetch)


def _load_packed_buffer(blob: bytes) -> PackedTrace:
    header, data_start = _parse_packed_header(blob)
    if header["version"] == _COMPRESSED_VERSION:
        return _assemble_compressed(header, data_start, len(blob), blob=blob)

    def getter(dtype, shape, abs_offset, count):
        return np.frombuffer(blob, dtype=dtype, count=count, offset=abs_offset).reshape(
            shape
        )

    fetch = lambda name: _packed_array(header, name, getter, len(blob), data_start)  # noqa: E731
    return _assemble_packed(header, fetch)


# --------------------------------------------------------------------------
# Compressed chunked (version 3) reader
# --------------------------------------------------------------------------


class _ChunkStore:
    """Lazy, LRU-bounded reader of a v3 bundle's compressed column chunks.

    One store is shared by every epoch of a :class:`LazyPackedTrace`.
    ``get(column, epoch)`` decompresses on demand — a positioned read of
    the chunk's byte extent, CRC-32 verification, decompress, decode
    (cumsum for the delta-encoded index) — and caches the result, evicting
    least-recently-used chunks past ``max_chunks`` so a long replay holds
    a handful of epochs in memory, not the whole trace.  File reads open
    the path per call (no shared seek position), which keeps the store
    safe to use from forked worker processes.
    """

    def __init__(
        self,
        codec: str,
        chunks: dict[str, list[dict]],
        data_start: int,
        *,
        path: str | None = None,
        blob: bytes | None = None,
        max_chunks: int = 256,
    ):
        self._decompress = _codec_decompress(codec)
        self._chunks = chunks
        self._data_start = data_start
        self._path = path
        self._blob = blob
        self._cache: OrderedDict[tuple[str, int], np.ndarray] = OrderedDict()
        self.max_chunks = max_chunks
        self.decodes = 0
        self.hits = 0

    def _read(self, offset: int, nbytes: int) -> bytes:
        abs_off = self._data_start + offset
        if self._blob is not None:
            return self._blob[abs_off : abs_off + nbytes]
        with open(self._path, "rb") as fh:
            fh.seek(abs_off)
            data = fh.read(nbytes)
        if len(data) != nbytes:
            raise TraceCorruptError("packed trace chunk truncated")
        return data

    def verify_crcs(self) -> None:
        """Check every chunk's CRC-32 against its directory entry.

        Reads only the *compressed* bytes — no decompression, no caching —
        so this is one cheap sequential pass over the payload.  Run by
        ``load_trace(validate=True)`` so in-chunk damage fails at load
        (where :class:`repro.runtime.cache.TraceCache` can quarantine the
        entry) instead of surfacing mid-replay.
        """
        fh = open(self._path, "rb") if self._blob is None else None
        try:
            for column, specs in self._chunks.items():
                for ei, spec in enumerate(specs):
                    nbytes = int(spec["nbytes"])
                    abs_off = self._data_start + int(spec["offset"])
                    if fh is not None:
                        fh.seek(abs_off)
                        raw = fh.read(nbytes)
                        if len(raw) != nbytes:
                            raise TraceCorruptError(
                                f"packed trace chunk {column}[{ei}] truncated"
                            )
                    else:
                        raw = self._blob[abs_off : abs_off + nbytes]
                    if zlib.crc32(raw) != int(spec["crc"]):
                        raise TraceCorruptError(
                            f"packed trace chunk {column}[{ei}] failed its"
                            " checksum"
                        )
        finally:
            if fh is not None:
                fh.close()

    def get(self, column: str, epoch: int) -> np.ndarray:
        key = (column, epoch)
        arr = self._cache.get(key)
        if arr is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            return arr
        spec = self._chunks[column][epoch]
        raw = self._read(int(spec["offset"]), int(spec["nbytes"]))
        if zlib.crc32(raw) != int(spec["crc"]):
            raise TraceCorruptError(
                f"packed trace chunk {column}[{epoch}] failed its checksum"
            )
        try:
            data = self._decompress(raw)
        except _CORRUPTION_ERRORS as exc:
            raise TraceCorruptError(
                f"packed trace chunk {column}[{epoch}] does not decompress:"
                f" {exc}"
            ) from exc
        dtype = np.dtype(str(spec["dtype"]))
        n = int(spec["n"])
        if len(data) != n * dtype.itemsize:
            raise TraceCorruptError(
                f"packed trace chunk {column}[{epoch}] has wrong decoded size"
            )
        arr = np.frombuffer(data, dtype=dtype, count=n)
        if spec.get("delta"):
            arr = np.cumsum(arr, dtype=np.int64)
        elif dtype.kind == "i" and dtype.itemsize < 8:
            # Burst columns are tiny; widen to the in-memory convention so
            # every consumer sees exactly what a v2 load would hand it.
            arr = arr.astype(np.int64)
        self.decodes += 1
        self._cache[key] = arr
        while len(self._cache) > self.max_chunks:
            self._cache.popitem(last=False)
        return arr


class LazyPackedEpoch(PackedEpoch):
    """A :class:`PackedEpoch` whose big columns decode from chunks on use.

    The ``index`` and burst columns are properties backed by the trace's
    shared :class:`_ChunkStore`; everything else (offset tables, work,
    locks) is eager.  The properties shadow the parent's slot descriptors,
    so this class must not assign those attributes — hence its own
    ``__init__``.
    """

    __slots__ = ("_store", "_ei")

    def __init__(
        self,
        nprocs: int,
        label: str,
        offsets: np.ndarray,
        burst_offsets: np.ndarray,
        work: np.ndarray,
        lock_acquires: np.ndarray,
        store: _ChunkStore,
        ei: int,
    ):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.label = label
        self.offsets = offsets
        self.burst_offsets = burst_offsets
        self.work = work
        self.lock_acquires = lock_acquires
        self._region = None
        self._is_write = None
        self._bursts = None
        self._store = store
        self._ei = ei

    @property
    def index(self) -> np.ndarray:
        return self._store.get("index", self._ei)

    @property
    def burst_region(self) -> np.ndarray:
        return self._store.get("burst_region", self._ei)

    @property
    def burst_write(self) -> np.ndarray:
        return self._store.get("burst_write", self._ei)

    @property
    def burst_length(self) -> np.ndarray:
        return self._store.get("burst_length", self._ei)


class LazyPackedTrace(PackedTrace):
    """A v3 (compressed) trace; epochs decode their chunks on demand.

    Decoded consistency-unit streams are still memoized per trace, but
    with an LRU bound (``decode_memo_max_epochs``) so lazy replay keeps
    its bounded-memory property instead of re-accumulating every epoch in
    the :class:`repro.trace.layout.DecodeMemo`.
    """

    #: picked up by :func:`repro.trace.layout.decode_memo`
    decode_memo_max_epochs = 64

    def __init__(self, nprocs: int, store: _ChunkStore):
        super().__init__(nprocs=nprocs)
        self.chunk_store = store


def _assemble_compressed(
    header: dict,
    data_start: int,
    file_bytes: int,
    *,
    path: str | None = None,
    blob: bytes | None = None,
) -> LazyPackedTrace:
    """Build a :class:`LazyPackedTrace` over a v3 bundle.

    Meta arrays (offset tables, work/locks) load eagerly and are checked
    structurally exactly like v2; every chunk's byte extent is verified
    against the file size here — a truncated file fails the load
    immediately (feeding the cache quarantine path) rather than failing
    mid-replay.  CRC/content checks run lazily at chunk decode; callers
    wanting eager damage detection use ``load_trace(validate=True)``,
    which adds a :meth:`_ChunkStore.verify_crcs` pass.
    """
    nprocs = int(header["nprocs"])
    labels = header["labels"]
    if not isinstance(labels, list):
        raise TraceCorruptError("packed trace header has no epoch label list")
    E = len(labels)
    codec = str(header.get("codec", ""))

    if blob is not None:
        def getter(dtype, shape, abs_offset, count):
            return np.frombuffer(
                blob, dtype=dtype, count=count, offset=abs_offset
            ).reshape(shape)
    else:
        def getter(dtype, shape, abs_offset, count):
            with open(path, "rb") as fh:
                fh.seek(abs_offset)
                arr = np.fromfile(fh, dtype=dtype, count=count)
            if arr.shape[0] != count:
                raise TraceCorruptError("packed trace array truncated")
            return arr.reshape(shape)

    fetch = lambda name: _packed_array(header, name, getter, file_bytes, data_start)  # noqa: E731
    access_offsets = fetch("access_offsets")
    burst_offsets = fetch("burst_offsets")
    eas = fetch("epoch_access_starts")
    ebs = fetch("epoch_burst_starts")
    work = fetch("work")
    locks = fetch("locks")

    if access_offsets.shape != (E, nprocs + 1) or burst_offsets.shape != (E, nprocs + 1):
        raise TraceCorruptError("packed trace offset tables have wrong shape")
    if work.shape != (E, nprocs) or locks.shape != (E, nprocs):
        raise TraceCorruptError("packed trace work/lock tables have wrong shape")
    for name, starts in (("epoch_access_starts", eas), ("epoch_burst_starts", ebs)):
        if starts.shape != (E + 1,):
            raise TraceCorruptError(f"packed trace {name} has wrong shape")
        if (starts.shape[0] and starts[0] != 0) or (np.diff(starts) < 0).any():
            raise TraceCorruptError(f"packed trace {name} do not tile the columns")

    chunks = header.get("chunks")
    if not isinstance(chunks, dict):
        raise TraceCorruptError("compressed trace header has no chunk directory")
    for name in _CHUNK_COLUMNS:
        specs = chunks.get(name)
        if not isinstance(specs, list) or len(specs) != E:
            raise TraceCorruptError(
                f"compressed trace chunk column {name!r} does not cover the epochs"
            )
        per_epoch = eas if name == "index" else ebs
        for ei, spec in enumerate(specs):
            if str(spec.get("dtype")) not in _CHUNK_DTYPES:
                raise TraceCorruptError(
                    f"compressed trace chunk {name}[{ei}] has dtype"
                    f" {spec.get('dtype')!r}"
                )
            offset = int(spec["offset"])
            nbytes = int(spec["nbytes"])
            n = int(spec["n"])
            if offset < 0 or nbytes < 0 or data_start + offset + nbytes > file_bytes:
                raise TraceCorruptError(
                    f"compressed trace chunk {name}[{ei}] extends past end of file"
                )
            if n != int(per_epoch[ei + 1] - per_epoch[ei]):
                raise TraceCorruptError(
                    f"compressed trace chunk {name}[{ei}] does not tile its column"
                )

    store = _ChunkStore(codec, chunks, data_start, path=path, blob=blob)
    trace = LazyPackedTrace(nprocs=nprocs, store=store)
    for r in header["regions"]:
        trace.regions.append(
            RegionSpec(str(r["name"]), int(r["num_objects"]), int(r["object_size"]))
        )
    for ei in range(E):
        trace.epochs.append(
            LazyPackedEpoch(
                nprocs=nprocs,
                label=str(labels[ei]),
                offsets=access_offsets[ei],
                burst_offsets=burst_offsets[ei],
                work=work[ei],
                lock_acquires=locks[ei],
                store=store,
                ei=ei,
            )
        )
    return trace


# --------------------------------------------------------------------------
# Legacy (version 1) compressed-npz format
# --------------------------------------------------------------------------


def _serialize(trace: Trace) -> dict[str, np.ndarray]:
    header = {
        "version": _LEGACY_NPZ_VERSION,
        "nprocs": trace.nprocs,
        "regions": [
            {"name": r.name, "num_objects": r.num_objects, "object_size": r.object_size}
            for r in trace.regions
        ],
        "epochs": [
            {
                "label": e.label,
                "work": np.asarray(e.work).tolist(),
                "locks": np.asarray(e.lock_acquires).tolist(),
            }
            for e in trace.epochs
        ],
    }
    arrays: dict[str, np.ndarray] = {}
    for ei, epoch in enumerate(trace.epochs):
        for p in range(trace.nprocs):
            bursts = epoch.bursts[p]
            if not bursts:
                continue
            key = f"e{ei}_p{p}"
            arrays[f"{key}_regions"] = np.array(
                [b.region for b in bursts], dtype=np.int32
            )
            arrays[f"{key}_writes"] = np.array(
                [b.is_write for b in bursts], dtype=np.bool_
            )
            arrays[f"{key}_lengths"] = np.array(
                [len(b) for b in bursts], dtype=np.int64
            )
            arrays[f"{key}_indices"] = (
                np.concatenate([b.indices for b in bursts])
                if bursts
                else np.empty(0, dtype=np.int64)
            )
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    return arrays


def save_trace_npz(trace: Trace, path) -> None:
    """Write ``trace`` in the legacy compressed ``.npz`` format, atomically.

    Kept for interoperability with files produced before the packed format
    (and as the measurable baseline in the pipeline benchmark).  Appends a
    ``.npz`` suffix when missing, matching ``np.savez_compressed``.
    """
    arrays = _serialize(trace)
    if not isinstance(path, (str, os.PathLike)):
        np.savez_compressed(path, **arrays)
        return
    dest = os.fspath(path)
    if not dest.endswith(".npz"):
        dest += ".npz"  # match np.savez_compressed's filename behaviour
    dirpath = os.path.dirname(dest) or "."
    fd, tmp = tempfile.mkstemp(
        dir=dirpath, prefix=os.path.basename(dest) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, dest)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _deserialize(data) -> Trace:
    header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
    if header.get("version") != _LEGACY_NPZ_VERSION:
        raise TraceVersionError(
            f"unsupported trace format version {header.get('version')!r}"
            f" (expected {_LEGACY_NPZ_VERSION})"
        )
    trace = Trace(nprocs=int(header["nprocs"]))
    for r in header["regions"]:
        trace.regions.append(
            RegionSpec(r["name"], int(r["num_objects"]), int(r["object_size"]))
        )
    for ei, emeta in enumerate(header["epochs"]):
        epoch = Epoch(nprocs=trace.nprocs, label=emeta["label"])
        epoch.work = np.array(emeta["work"], dtype=np.float64)
        epoch.lock_acquires = np.array(emeta["locks"], dtype=np.int64)
        for p in range(trace.nprocs):
            key = f"e{ei}_p{p}"
            if f"{key}_regions" not in data:
                continue
            regions = data[f"{key}_regions"]
            writes = data[f"{key}_writes"]
            lengths = data[f"{key}_lengths"]
            indices = data[f"{key}_indices"]
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            for bi in range(regions.shape[0]):
                epoch.bursts[p].append(
                    Burst(
                        int(regions[bi]),
                        indices[offsets[bi] : offsets[bi + 1]],
                        bool(writes[bi]),
                    )
                )
        trace.epochs.append(epoch)
    return trace


# --------------------------------------------------------------------------
# Loader (sniffs the format)
# --------------------------------------------------------------------------


def load_trace(path, mmap: bool = True, validate: bool = True) -> Trace:
    """Read a trace written by :func:`save_trace` (or the legacy writer).

    The format is sniffed from the file magic: packed bundles load as
    zero-copy :class:`PackedTrace` views — mmap-backed when ``mmap=True``
    and ``path`` names a file on disk — while legacy ``.npz`` archives
    deserialize eagerly into burst lists.  ``validate=False`` skips the
    content check (index ranges) but never the structural one.  Compressed
    (v3) bundles load as :class:`LazyPackedTrace`; their structural and
    chunk-bounds checks always run at load, and ``validate=True`` adds a
    CRC pass over the compressed chunk bytes (cheap — no decompression),
    so a damaged bundle fails here (and the trace cache quarantines it)
    rather than mid-replay; the index-range content check stays deferred
    to chunk decode, which would decompress the whole file.

    Raises :class:`repro.errors.TraceCorruptError` if the file cannot be
    parsed back into a valid trace (truncated file, garbled bytes, bad
    header, out-of-range indices...), and its subclass
    :class:`repro.errors.TraceVersionError` on a format-version mismatch.
    A missing file still raises ``FileNotFoundError``.
    """
    try:
        if isinstance(path, (str, os.PathLike)):
            fspath = os.fspath(path)
            with open(fspath, "rb") as fh:
                magic = fh.read(len(_MAGIC))
            if magic == _MAGIC:
                trace = _load_packed_path(fspath, mmap=mmap)
            else:
                with np.load(fspath) as data:
                    trace = _deserialize(data)
        else:
            blob = path.read()
            if blob[: len(_MAGIC)] == _MAGIC:
                trace = _load_packed_buffer(blob)
            else:
                with np.load(_io.BytesIO(blob)) as data:
                    trace = _deserialize(data)
        if validate:
            if isinstance(trace, LazyPackedTrace):
                trace.chunk_store.verify_crcs()
            else:
                trace.validate()
        return trace
    except (TraceCorruptError, FileNotFoundError):
        raise
    except _CORRUPTION_ERRORS as exc:
        raise TraceCorruptError(
            f"trace file {os.fspath(path) if isinstance(path, (str, os.PathLike)) else path!r}"
            f" is corrupt or unreadable: {type(exc).__name__}: {exc}"
        ) from exc
