"""Trace serialization: packed mmap bundles (``.npt``) + legacy ``.npz``.

Trace generation is the expensive half of every experiment (the apps run
real physics); the machine models are cheap pure functions.  Saving traces
lets a workflow generate once and sweep machine parameters offline, or ship
a trace to a colleague without shipping the computation.  The persistent
cache behind resumable runs (:mod:`repro.runtime.cache`) is built on this
module, which imposes two robustness requirements:

* **writes are atomic** — :func:`save_trace` writes to a temporary file in
  the destination directory and ``os.replace``-s it into place, so an
  interrupt mid-write can never leave a half-written file behind;
* **reads fail structurally** — :func:`load_trace` raises
  :class:`repro.errors.TraceCorruptError` (a ``ValueError`` subclass) for
  *any* unreadable, truncated, or garbled file, and
  :class:`repro.errors.TraceVersionError` for a format-version mismatch,
  so callers can quarantine-and-regenerate instead of crashing.

Packed format (version 2, the default)
--------------------------------------
A single raw binary bundle designed for ``np.memmap``::

    8 bytes   magic  b"REPROTRC"
    8 bytes   header length (little-endian uint64)
    N bytes   JSON header: version, nprocs, regions, epoch labels, and an
              array directory {name: {dtype, shape, offset}} with offsets
              relative to the 64-byte-aligned data section
    ...       raw C-order array bytes, each segment 64-byte aligned

The arrays are the columns of a :class:`repro.trace.packed.PackedTrace`
concatenated across epochs (offset tables, burst columns, work/lock
matrices), minus two deliberate omissions that keep the bundle small —
writing bytes is the dominant save cost:

* the expanded per-access ``region`` and ``is_write`` columns are *not*
  stored; they are exactly ``np.repeat(burst_region, burst_length)`` /
  ``np.repeat(burst_write, burst_length)`` and are rebuilt in one pass at
  load time;
* the access ``index`` column is stored at the narrowest safe integer
  width (``int32`` whenever every index fits, which object indices always
  do in practice) and widened back to ``int64`` on load.

Loading with ``mmap=True`` (the default for on-disk files) maps each
stored segment with ``np.memmap``: no decompression, no per-burst object
construction.  Columns stored at their in-memory width are zero-copy
views into the mapping, faulted in lazily as the simulators touch them;
the reconstructed/widened columns are materialized once at load.

Legacy format (version 1) is the compressed ``.npz`` of earlier releases;
:func:`load_trace` sniffs the magic and still reads it (eagerly), and
:func:`save_trace_npz` still writes it — the pipeline benchmark uses that
as its burst-list baseline.
"""

from __future__ import annotations

import contextlib
import io as _io
import json
import os
import struct
import tempfile
import zipfile
import zlib

import numpy as np

from ..errors import TraceCorruptError, TraceVersionError
from .events import Burst, Epoch, RegionSpec, Trace
from .packed import PackedEpoch, PackedTrace, pack_trace

__all__ = ["save_trace", "save_trace_npz", "load_trace", "TRACE_SUFFIX"]

_FORMAT_VERSION = 2
_LEGACY_NPZ_VERSION = 1
_MAGIC = b"REPROTRC"
_ALIGN = 64
#: Canonical file suffix for packed trace bundles.
TRACE_SUFFIX = ".npt"

#: dtypes a packed bundle may declare; anything else is corruption.
_ALLOWED_DTYPES = {
    "<i8": np.int64,
    "<i4": np.int32,
    "|b1": np.bool_,
    "<f8": np.float64,
}

#: Everything that can plausibly escape ``np.load``/``json``/array slicing
#: on a damaged file.  Anything else is a programming error and propagates.
_CORRUPTION_ERRORS = (
    ValueError,
    KeyError,
    TypeError,
    IndexError,
    EOFError,
    OSError,
    struct.error,
    zipfile.BadZipFile,
    zlib.error,
    json.JSONDecodeError,
    UnicodeDecodeError,
)


def _align_up(n: int) -> int:
    return -(-n // _ALIGN) * _ALIGN


# --------------------------------------------------------------------------
# Packed (version 2) writer
# --------------------------------------------------------------------------


def _pack_arrays(trace: PackedTrace) -> dict[str, np.ndarray]:
    """Concatenate the per-epoch columns into the bundle's array set."""
    epochs = trace.epochs
    E = len(epochs)
    P = trace.nprocs

    def cat(parts: list[np.ndarray], dtype) -> np.ndarray:
        return np.concatenate(parts) if parts else np.empty(0, dtype=dtype)

    def stack(parts: list[np.ndarray], width: int, dtype) -> np.ndarray:
        return np.stack(parts) if parts else np.zeros((0, width), dtype=dtype)

    epoch_access_starts = np.zeros(E + 1, dtype=np.int64)
    epoch_burst_starts = np.zeros(E + 1, dtype=np.int64)
    for ei, e in enumerate(epochs):
        epoch_access_starts[ei + 1] = epoch_access_starts[ei] + e.offsets[-1]
        epoch_burst_starts[ei + 1] = epoch_burst_starts[ei] + e.burst_offsets[-1]

    index = cat([e.index for e in epochs], np.int64)
    if index.size:
        info = np.iinfo(np.int32)
        lo, hi = int(index.min()), int(index.max())
        if info.min <= lo and hi <= info.max:
            index = index.astype(np.int32)

    return {
        "index": index,
        "access_offsets": stack([e.offsets for e in epochs], P + 1, np.int64),
        "burst_region": cat([e.burst_region for e in epochs], np.int64),
        "burst_write": cat([e.burst_write for e in epochs], np.bool_),
        "burst_length": cat([e.burst_length for e in epochs], np.int64),
        "burst_offsets": stack([e.burst_offsets for e in epochs], P + 1, np.int64),
        "epoch_access_starts": epoch_access_starts,
        "epoch_burst_starts": epoch_burst_starts,
        "work": stack([e.work for e in epochs], P, np.float64),
        "locks": stack([e.lock_acquires for e in epochs], P, np.int64),
    }


def _write_packed(fh, trace: PackedTrace) -> None:
    arrays = _pack_arrays(trace)
    directory: dict[str, dict] = {}
    offset = 0
    for name, arr in arrays.items():
        offset = _align_up(offset)
        directory[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
        }
        offset += arr.nbytes
    header = {
        "version": _FORMAT_VERSION,
        "nprocs": trace.nprocs,
        "regions": [
            {"name": r.name, "num_objects": r.num_objects, "object_size": r.object_size}
            for r in trace.regions
        ],
        "labels": [e.label for e in trace.epochs],
        "arrays": directory,
        "data_bytes": offset,
    }
    hbytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    fh.write(_MAGIC)
    fh.write(struct.pack("<Q", len(hbytes)))
    fh.write(hbytes)
    pos = len(_MAGIC) + 8 + len(hbytes)
    fh.write(b"\0" * (_align_up(pos) - pos))
    written = 0
    for name, arr in arrays.items():
        pad = directory[name]["offset"] - written
        if pad:
            fh.write(b"\0" * pad)
            written += pad
        data = np.ascontiguousarray(arr).tobytes()
        fh.write(data)
        written += len(data)


def save_trace(trace: Trace, path) -> None:
    """Write ``trace`` to ``path`` as a packed bundle, atomically.

    Burst-list traces are packed first (:func:`repro.trace.packed.pack_trace`);
    packed traces serialize without copying their columns.  The bytes go to
    a temporary sibling file which is fsynced and then ``os.replace``-d
    over ``path``: readers either see the old file or the complete new one,
    never a prefix.  File-like destinations are written directly (no
    atomicity to offer there).  By convention packed bundles use the
    ``.npt`` suffix, but no suffix is imposed.
    """
    packed = pack_trace(trace)
    if not isinstance(path, (str, os.PathLike)):
        _write_packed(path, packed)
        return
    dest = os.fspath(path)
    dirpath = os.path.dirname(dest) or "."
    fd, tmp = tempfile.mkstemp(
        dir=dirpath, prefix=os.path.basename(dest) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            _write_packed(fh, packed)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, dest)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


# --------------------------------------------------------------------------
# Packed (version 2) reader
# --------------------------------------------------------------------------


def _parse_packed_header(blob: bytes) -> tuple[dict, int]:
    """Validate magic + header; returns (header, data_start)."""
    if len(blob) < len(_MAGIC) + 8:
        raise TraceCorruptError("packed trace file shorter than its preamble")
    (hlen,) = struct.unpack_from("<Q", blob, len(_MAGIC))
    start = len(_MAGIC) + 8
    if hlen > len(blob) - start:
        raise TraceCorruptError("packed trace header extends past end of file")
    header = json.loads(blob[start : start + hlen].decode("utf-8"))
    if not isinstance(header, dict):
        raise TraceCorruptError("packed trace header is not a JSON object")
    version = header.get("version")
    if version != _FORMAT_VERSION:
        raise TraceVersionError(
            f"unsupported trace format version {version!r}"
            f" (expected {_FORMAT_VERSION})"
        )
    return header, _align_up(start + hlen)


def _packed_array(header: dict, name: str, getter, file_bytes: int, data_start: int):
    """One array from the bundle directory, shape/dtype/bounds checked."""
    spec = header["arrays"][name]
    dtype = np.dtype(str(spec["dtype"]))
    if str(spec["dtype"]) not in _ALLOWED_DTYPES:
        raise TraceCorruptError(f"packed trace array {name!r} has dtype {spec['dtype']!r}")
    shape = tuple(int(s) for s in spec["shape"])
    if any(s < 0 for s in shape):
        raise TraceCorruptError(f"packed trace array {name!r} has negative shape")
    count = int(np.prod(shape)) if shape else 1
    offset = int(spec["offset"])
    if offset < 0 or data_start + offset + count * dtype.itemsize > file_bytes:
        raise TraceCorruptError(f"packed trace array {name!r} extends past end of file")
    if count == 0:
        return np.empty(shape, dtype=dtype)
    return getter(dtype, shape, data_start + offset, count)


def _assemble_packed(header: dict, fetch) -> PackedTrace:
    """Build a :class:`PackedTrace` of views over the fetched arrays."""
    nprocs = int(header["nprocs"])
    labels = header["labels"]
    if not isinstance(labels, list):
        raise TraceCorruptError("packed trace header has no epoch label list")
    E = len(labels)

    index = fetch("index")
    if index.dtype != np.int64:
        index = index.astype(np.int64)
    access_offsets = fetch("access_offsets")
    burst_region = fetch("burst_region")
    burst_write = fetch("burst_write")
    burst_length = fetch("burst_length")
    burst_offsets = fetch("burst_offsets")
    eas = fetch("epoch_access_starts")
    ebs = fetch("epoch_burst_starts")
    work = fetch("work")
    locks = fetch("locks")

    if access_offsets.shape != (E, nprocs + 1) or burst_offsets.shape != (E, nprocs + 1):
        raise TraceCorruptError("packed trace offset tables have wrong shape")
    # The per-access region/write columns are not stored; PackedEpoch
    # derives them lazily from the burst metadata on first use (each
    # burst's attributes repeated over its length), so only their
    # consistency is checked here.
    blen = np.asarray(burst_length, dtype=np.int64)
    if blen.size and int(blen.min()) < 0:
        raise TraceCorruptError("packed trace has negative burst lengths")
    if int(blen.sum()) != index.shape[0]:
        raise TraceCorruptError(
            "packed trace burst lengths do not tile the access columns"
        )
    if work.shape != (E, nprocs) or locks.shape != (E, nprocs):
        raise TraceCorruptError("packed trace work/lock tables have wrong shape")
    for name, starts, col in (
        ("epoch_access_starts", eas, index),
        ("epoch_burst_starts", ebs, burst_region),
    ):
        if starts.shape != (E + 1,):
            raise TraceCorruptError(f"packed trace {name} has wrong shape")
        if E >= 0 and (
            (starts.shape[0] and starts[0] != 0)
            or (np.diff(starts) < 0).any()
            or (starts.shape[0] and int(starts[-1]) != col.shape[0])
        ):
            raise TraceCorruptError(f"packed trace {name} do not tile the columns")

    trace = PackedTrace(nprocs=nprocs)
    for r in header["regions"]:
        trace.regions.append(
            RegionSpec(str(r["name"]), int(r["num_objects"]), int(r["object_size"]))
        )
    for ei in range(E):
        lo, hi = int(eas[ei]), int(eas[ei + 1])
        blo, bhi = int(ebs[ei]), int(ebs[ei + 1])
        trace.epochs.append(
            PackedEpoch(
                nprocs=nprocs,
                label=str(labels[ei]),
                offsets=access_offsets[ei],
                index=index[lo:hi],
                burst_offsets=burst_offsets[ei],
                burst_region=burst_region[blo:bhi],
                burst_write=burst_write[blo:bhi],
                burst_length=burst_length[blo:bhi],
                work=work[ei],
                lock_acquires=locks[ei],
            )
        )
    return trace


def _load_packed_path(path: str, mmap: bool) -> PackedTrace:
    file_bytes = os.path.getsize(path)
    with open(path, "rb") as fh:
        preamble = fh.read(len(_MAGIC) + 8)
        if len(preamble) < len(_MAGIC) + 8:
            raise TraceCorruptError("packed trace file shorter than its preamble")
        (hlen,) = struct.unpack_from("<Q", preamble, len(_MAGIC))
        if hlen > file_bytes:
            raise TraceCorruptError("packed trace header extends past end of file")
        blob = preamble + fh.read(hlen)
    header, data_start = _parse_packed_header(blob)

    if mmap:
        def getter(dtype, shape, abs_offset, count):
            return np.memmap(path, dtype=dtype, mode="r", offset=abs_offset, shape=shape)
    else:
        def getter(dtype, shape, abs_offset, count):
            with open(path, "rb") as fh:
                fh.seek(abs_offset)
                arr = np.fromfile(fh, dtype=dtype, count=count)
            if arr.shape[0] != count:
                raise TraceCorruptError("packed trace array truncated")
            return arr.reshape(shape)

    fetch = lambda name: _packed_array(header, name, getter, file_bytes, data_start)  # noqa: E731
    return _assemble_packed(header, fetch)


def _load_packed_buffer(blob: bytes) -> PackedTrace:
    header, data_start = _parse_packed_header(blob)

    def getter(dtype, shape, abs_offset, count):
        return np.frombuffer(blob, dtype=dtype, count=count, offset=abs_offset).reshape(
            shape
        )

    fetch = lambda name: _packed_array(header, name, getter, len(blob), data_start)  # noqa: E731
    return _assemble_packed(header, fetch)


# --------------------------------------------------------------------------
# Legacy (version 1) compressed-npz format
# --------------------------------------------------------------------------


def _serialize(trace: Trace) -> dict[str, np.ndarray]:
    header = {
        "version": _LEGACY_NPZ_VERSION,
        "nprocs": trace.nprocs,
        "regions": [
            {"name": r.name, "num_objects": r.num_objects, "object_size": r.object_size}
            for r in trace.regions
        ],
        "epochs": [
            {
                "label": e.label,
                "work": np.asarray(e.work).tolist(),
                "locks": np.asarray(e.lock_acquires).tolist(),
            }
            for e in trace.epochs
        ],
    }
    arrays: dict[str, np.ndarray] = {}
    for ei, epoch in enumerate(trace.epochs):
        for p in range(trace.nprocs):
            bursts = epoch.bursts[p]
            if not bursts:
                continue
            key = f"e{ei}_p{p}"
            arrays[f"{key}_regions"] = np.array(
                [b.region for b in bursts], dtype=np.int32
            )
            arrays[f"{key}_writes"] = np.array(
                [b.is_write for b in bursts], dtype=np.bool_
            )
            arrays[f"{key}_lengths"] = np.array(
                [len(b) for b in bursts], dtype=np.int64
            )
            arrays[f"{key}_indices"] = (
                np.concatenate([b.indices for b in bursts])
                if bursts
                else np.empty(0, dtype=np.int64)
            )
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    return arrays


def save_trace_npz(trace: Trace, path) -> None:
    """Write ``trace`` in the legacy compressed ``.npz`` format, atomically.

    Kept for interoperability with files produced before the packed format
    (and as the measurable baseline in the pipeline benchmark).  Appends a
    ``.npz`` suffix when missing, matching ``np.savez_compressed``.
    """
    arrays = _serialize(trace)
    if not isinstance(path, (str, os.PathLike)):
        np.savez_compressed(path, **arrays)
        return
    dest = os.fspath(path)
    if not dest.endswith(".npz"):
        dest += ".npz"  # match np.savez_compressed's filename behaviour
    dirpath = os.path.dirname(dest) or "."
    fd, tmp = tempfile.mkstemp(
        dir=dirpath, prefix=os.path.basename(dest) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, dest)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _deserialize(data) -> Trace:
    header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
    if header.get("version") != _LEGACY_NPZ_VERSION:
        raise TraceVersionError(
            f"unsupported trace format version {header.get('version')!r}"
            f" (expected {_LEGACY_NPZ_VERSION})"
        )
    trace = Trace(nprocs=int(header["nprocs"]))
    for r in header["regions"]:
        trace.regions.append(
            RegionSpec(r["name"], int(r["num_objects"]), int(r["object_size"]))
        )
    for ei, emeta in enumerate(header["epochs"]):
        epoch = Epoch(nprocs=trace.nprocs, label=emeta["label"])
        epoch.work = np.array(emeta["work"], dtype=np.float64)
        epoch.lock_acquires = np.array(emeta["locks"], dtype=np.int64)
        for p in range(trace.nprocs):
            key = f"e{ei}_p{p}"
            if f"{key}_regions" not in data:
                continue
            regions = data[f"{key}_regions"]
            writes = data[f"{key}_writes"]
            lengths = data[f"{key}_lengths"]
            indices = data[f"{key}_indices"]
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            for bi in range(regions.shape[0]):
                epoch.bursts[p].append(
                    Burst(
                        int(regions[bi]),
                        indices[offsets[bi] : offsets[bi + 1]],
                        bool(writes[bi]),
                    )
                )
        trace.epochs.append(epoch)
    return trace


# --------------------------------------------------------------------------
# Loader (sniffs the format)
# --------------------------------------------------------------------------


def load_trace(path, mmap: bool = True, validate: bool = True) -> Trace:
    """Read a trace written by :func:`save_trace` (or the legacy writer).

    The format is sniffed from the file magic: packed bundles load as
    zero-copy :class:`PackedTrace` views — mmap-backed when ``mmap=True``
    and ``path`` names a file on disk — while legacy ``.npz`` archives
    deserialize eagerly into burst lists.  ``validate=False`` skips the
    content check (index ranges) but never the structural one.

    Raises :class:`repro.errors.TraceCorruptError` if the file cannot be
    parsed back into a valid trace (truncated file, garbled bytes, bad
    header, out-of-range indices...), and its subclass
    :class:`repro.errors.TraceVersionError` on a format-version mismatch.
    A missing file still raises ``FileNotFoundError``.
    """
    try:
        if isinstance(path, (str, os.PathLike)):
            fspath = os.fspath(path)
            with open(fspath, "rb") as fh:
                magic = fh.read(len(_MAGIC))
            if magic == _MAGIC:
                trace = _load_packed_path(fspath, mmap=mmap)
            else:
                with np.load(fspath) as data:
                    trace = _deserialize(data)
        else:
            blob = path.read()
            if blob[: len(_MAGIC)] == _MAGIC:
                trace = _load_packed_buffer(blob)
            else:
                with np.load(_io.BytesIO(blob)) as data:
                    trace = _deserialize(data)
        if validate:
            trace.validate()
        return trace
    except (TraceCorruptError, FileNotFoundError):
        raise
    except _CORRUPTION_ERRORS as exc:
        raise TraceCorruptError(
            f"trace file {os.fspath(path) if isinstance(path, (str, os.PathLike)) else path!r}"
            f" is corrupt or unreadable: {type(exc).__name__}: {exc}"
        ) from exc
