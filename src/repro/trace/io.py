"""Trace serialization (numpy ``.npz``).

Trace generation is the expensive half of every experiment (the apps run
real physics); the machine models are cheap pure functions.  Saving traces
lets a workflow generate once and sweep machine parameters offline, or ship
a trace to a colleague without shipping the computation.

Format: one compressed ``.npz`` holding a small JSON header (processor
count, regions, epoch labels/work/locks) plus three flat arrays per
(epoch, processor) concatenation — burst region ids, burst lengths and
burst write flags, and the concatenated indices — so files stay compact
and loading is allocation-light.
"""

from __future__ import annotations

import json

import numpy as np

from .events import Burst, Epoch, RegionSpec, Trace

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path) -> None:
    """Write ``trace`` to ``path`` (``.npz``, compressed)."""
    header = {
        "version": _FORMAT_VERSION,
        "nprocs": trace.nprocs,
        "regions": [
            {"name": r.name, "num_objects": r.num_objects, "object_size": r.object_size}
            for r in trace.regions
        ],
        "epochs": [
            {
                "label": e.label,
                "work": e.work.tolist(),
                "locks": e.lock_acquires.tolist(),
            }
            for e in trace.epochs
        ],
    }
    arrays: dict[str, np.ndarray] = {}
    for ei, epoch in enumerate(trace.epochs):
        for p in range(trace.nprocs):
            bursts = epoch.bursts[p]
            if not bursts:
                continue
            key = f"e{ei}_p{p}"
            arrays[f"{key}_regions"] = np.array(
                [b.region for b in bursts], dtype=np.int32
            )
            arrays[f"{key}_writes"] = np.array(
                [b.is_write for b in bursts], dtype=np.bool_
            )
            arrays[f"{key}_lengths"] = np.array(
                [len(b) for b in bursts], dtype=np.int64
            )
            arrays[f"{key}_indices"] = (
                np.concatenate([b.indices for b in bursts])
                if bursts
                else np.empty(0, dtype=np.int64)
            )
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_trace(path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header.get('version')!r}"
            )
        trace = Trace(nprocs=int(header["nprocs"]))
        for r in header["regions"]:
            trace.regions.append(
                RegionSpec(r["name"], int(r["num_objects"]), int(r["object_size"]))
            )
        for ei, emeta in enumerate(header["epochs"]):
            epoch = Epoch(nprocs=trace.nprocs, label=emeta["label"])
            epoch.work = np.array(emeta["work"], dtype=np.float64)
            epoch.lock_acquires = np.array(emeta["locks"], dtype=np.int64)
            for p in range(trace.nprocs):
                key = f"e{ei}_p{p}"
                if f"{key}_regions" not in data:
                    continue
                regions = data[f"{key}_regions"]
                writes = data[f"{key}_writes"]
                lengths = data[f"{key}_lengths"]
                indices = data[f"{key}_indices"]
                offsets = np.concatenate([[0], np.cumsum(lengths)])
                for bi in range(regions.shape[0]):
                    epoch.bursts[p].append(
                        Burst(
                            int(regions[bi]),
                            indices[offsets[bi] : offsets[bi + 1]],
                            bool(writes[bi]),
                        )
                    )
            trace.epochs.append(epoch)
        trace.validate()
        return trace
