"""Mapping object accesses to bytes, cache lines, and pages.

Traces are object-granularity (see :mod:`repro.trace.events`); the machine
models think in *consistency units* — 128-byte cache lines on the Origin
2000, 4/8/16 KB pages on the software DSMs.  A :class:`Layout` fixes the
byte address of every object and converts index arrays to unit ids, expanding
objects that straddle unit boundaries (a 680-byte Water-Spatial molecule
covers six 128-byte lines; a 96-byte Barnes-Hut body can straddle two).

Regions are placed back to back, each aligned to the *largest* unit of
interest (page-aligned), mirroring separate shared-memory allocations in the
original benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .events import RegionSpec, Trace

__all__ = ["Layout", "DecodedEpoch", "DecodeMemo", "decode_epoch", "decode_memo"]


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class Layout:
    """Byte placement of a trace's regions in one shared address space."""

    regions: tuple[RegionSpec, ...]
    bases: tuple[int, ...]
    align: int

    @classmethod
    def for_trace(cls, trace: Trace, align: int = 16384) -> "Layout":
        """Place each region of ``trace`` at the next ``align`` boundary."""
        return cls.for_regions(trace.regions, align=align)

    @classmethod
    def for_regions(
        cls, regions: list[RegionSpec] | tuple[RegionSpec, ...], align: int = 16384
    ) -> "Layout":
        if not _is_pow2(align):
            raise ValueError("align must be a power of two")
        bases = []
        cursor = 0
        for r in regions:
            bases.append(cursor)
            cursor += -(-r.nbytes // align) * align  # round up to alignment
        return cls(regions=tuple(regions), bases=tuple(bases), align=align)

    @property
    def total_bytes(self) -> int:
        if not self.regions:
            return 0
        last = len(self.regions) - 1
        return self.bases[last] + -(-self.regions[last].nbytes // self.align) * self.align

    def addresses(self, region: int, indices: np.ndarray) -> np.ndarray:
        """Start byte address of each object."""
        spec = self.regions[region]
        idx = np.asarray(indices, dtype=np.int64)
        return self.bases[region] + idx * spec.object_size

    def units(
        self, region: int, indices: np.ndarray, unit: int, expand: bool = True
    ) -> np.ndarray:
        """Consistency-unit id of each object access.

        With ``expand=True`` (default), an object spanning ``k`` units
        contributes ``k`` consecutive entries, preserving order; with
        ``expand=False`` only the unit of the object's first byte is
        returned (cheaper; exact when ``object_size`` divides ``unit``
        alignment).
        """
        if not _is_pow2(unit):
            raise ValueError("unit must be a power of two")
        spec = self.regions[region]
        start = self.addresses(region, indices)
        first = start >> unit.bit_length() - 1
        if not expand:
            return first
        last = (start + spec.object_size - 1) >> unit.bit_length() - 1
        span = last - first
        if not span.any():
            return first
        max_span = int(span.max()) + 1
        # Expand: for each access emit units first..last.  Vectorized via a
        # (n, max_span) grid masked to each object's true span.
        n = first.shape[0]
        grid = first[:, None] + np.arange(max_span, dtype=np.int64)[None, :]
        mask = np.arange(max_span, dtype=np.int64)[None, :] <= span[:, None]
        return grid[mask]

    def _object_sizes(self) -> np.ndarray:
        return np.fromiter(
            (r.object_size for r in self.regions),
            dtype=np.int64,
            count=len(self.regions),
        )

    def units_batch(
        self,
        regions: np.ndarray,
        indices: np.ndarray,
        unit: int,
        return_counts: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Unit ids for a mixed-region access stream, fully vectorized.

        Equivalent to concatenating :meth:`units` over per-burst slices —
        ``regions`` gives each access's region id — but runs as one numpy
        pass, so decoding an epoch is not bound by per-burst call
        overhead.  Order is preserved; objects straddling unit boundaries
        expand to consecutive entries exactly as :meth:`units` does.
        With ``return_counts=True`` also returns how many units each
        access expanded to, so callers can propagate per-access metadata
        (e.g. write flags) onto the expanded stream.
        """
        if not _is_pow2(unit):
            raise ValueError("unit must be a power of two")
        shift = unit.bit_length() - 1
        regions = np.asarray(regions, dtype=np.int64)
        bases = np.asarray(self.bases, dtype=np.int64)[regions]
        sizes = self._object_sizes()[regions]
        # ``indices`` may be a narrow on-disk column (int32 mmap view);
        # the multiply upcasts element-wise, so no widened copy is made.
        start = bases + np.asarray(indices) * sizes
        first = start >> shift
        span = ((start + sizes - 1) >> shift) - first
        return _expand_units(first, span, return_counts)

    def units_batch_bursts(
        self,
        burst_region: np.ndarray,
        burst_length: np.ndarray,
        indices: np.ndarray,
        unit: int,
        return_counts: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Unit ids for a CSR burst-run stream, without a per-access region
        column.

        Equivalent to ``units_batch(np.repeat(burst_region, burst_length),
        indices, unit)`` but the region attributes are gathered at burst
        granularity and repeated — the packed trace's per-access ``region``
        column never has to be materialized, which is what keeps the packed
        replay path ahead of the burst-list one.
        """
        if not _is_pow2(unit):
            raise ValueError("unit must be a power of two")
        shift = unit.bit_length() - 1
        breg = np.asarray(burst_region, dtype=np.int64)
        bases = np.asarray(self.bases, dtype=np.int64)[breg]
        sizes = np.repeat(self._object_sizes()[breg], burst_length)
        start = np.repeat(bases, burst_length)
        start += np.asarray(indices) * sizes
        first = start >> shift
        # Reuse ``start`` as scratch for the last-unit computation.
        np.add(start, sizes, out=start)
        start -= 1
        start >>= shift
        span = start - first
        return _expand_units(first, span, return_counts)

    def lines(self, region: int, indices: np.ndarray, line_size: int) -> np.ndarray:
        """Cache-line ids touched by the accesses (order-preserving, expanded)."""
        return self.units(region, indices, line_size, expand=True)

    def pages(self, region: int, indices: np.ndarray, page_size: int) -> np.ndarray:
        """Page ids touched by the accesses (order-preserving, expanded)."""
        return self.units(region, indices, page_size, expand=True)

    def region_pages(self, region: int, page_size: int) -> np.ndarray:
        """All page ids covered by a region, in address order."""
        spec = self.regions[region]
        base = self.bases[region]
        first = base // page_size
        last = (base + max(spec.nbytes, 1) - 1) // page_size
        return np.arange(first, last + 1, dtype=np.int64)


def _expand_units(
    first: np.ndarray, span: np.ndarray, return_counts: bool
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Expand per-access first units over their spans, order-preserving.

    An access with span ``k`` contributes units ``first..first+k``.  The
    expansion is fused: the run-start offset is folded into ``first``
    *before* the repeat, so only one full-length repeat plus one arange
    pass touch the expanded stream.
    """
    if not span.any():
        if return_counts:
            return first, np.ones(first.shape[0], dtype=np.int64)
        return first
    counts = span + 1
    # first - run_start, computed at access granularity then repeated.
    base = np.cumsum(counts)
    base -= counts
    np.subtract(first, base, out=base)
    out = np.repeat(base, counts)
    out += np.arange(out.shape[0], dtype=np.int64)
    if return_counts:
        return out, counts
    return out


# --------------------------------------------------------------------------
# Per-trace decode memo
# --------------------------------------------------------------------------
#
# Decoding object accesses into consistency-unit streams (``units_batch``)
# is the shared front end of every consumer: the hardware simulator decodes
# into cache lines, the DSM interval builder into pages, ``trace.stats``
# into whatever unit the caller asks.  A sweep over page sizes, or simply
# running all three platforms on one trace, used to re-decode the same
# epochs once per call.  The memo below caches decodings *per trace*, keyed
# by the decode geometry — the region table, region placement, alignment,
# and unit size — so total decoding work is O(distinct geometries), not
# O(simulator calls).  The ``decodes``/``hits`` counters make that property
# testable.


@dataclass
class DecodedEpoch:
    """One epoch decoded to per-proc consistency-unit streams.

    ``units[p]`` is the expanded unit-id stream for processor ``p``;
    ``counts[p]`` is how many units each original access expanded to
    (``None`` when no object straddled a unit boundary, i.e. the stream is
    access-aligned).  :meth:`expand` propagates per-access metadata (write
    flags, say) onto the expanded stream.
    """

    units: list[np.ndarray]
    counts: list[np.ndarray | None]

    def expand(self, proc: int, values: np.ndarray) -> np.ndarray:
        c = self.counts[proc]
        return values if c is None else np.repeat(values, c)


def decode_epoch(epoch, layout: Layout, unit: int) -> DecodedEpoch:
    """Decode every processor's access stream of one epoch to unit ids.

    Packed epochs decode at burst granularity (:meth:`Layout.units_batch_bursts`
    over zero-copy column slices) — the derived per-access ``region`` and
    ``is_write`` columns are never materialized.  Burst-list epochs fall
    back to the per-access ``flat``/``units_batch`` path.
    """
    units: list[np.ndarray] = []
    counts: list[np.ndarray | None] = []
    packed = hasattr(epoch, "burst_offsets")
    for p in range(epoch.nprocs):
        if packed:
            lo, hi = int(epoch.offsets[p]), int(epoch.offsets[p + 1])
            if hi == lo:
                units.append(np.empty(0, dtype=np.int64))
                counts.append(None)
                continue
            b0, b1 = int(epoch.burst_offsets[p]), int(epoch.burst_offsets[p + 1])
            u, c = layout.units_batch_bursts(
                epoch.burst_region[b0:b1],
                epoch.burst_length[b0:b1],
                epoch.index[lo:hi],
                unit,
                return_counts=True,
            )
            n = hi - lo
        else:
            regs, idx, _writes = epoch.flat(p)
            if idx.shape[0] == 0:
                units.append(np.empty(0, dtype=np.int64))
                counts.append(None)
                continue
            u, c = layout.units_batch(regs, idx, unit, return_counts=True)
            n = idx.shape[0]
        units.append(u)
        # All-ones counts mean the stream is access-aligned; storing None
        # lets ``expand`` skip the np.repeat copy entirely.
        counts.append(None if u.shape[0] == n else c)
    return DecodedEpoch(units=units, counts=counts)


class DecodeMemo:
    """Per-trace cache of epoch decodings, keyed by decode geometry.

    Geometry = ``(layout.regions, layout.bases, layout.align, unit)``.  Two
    simulator calls that agree on all four share every decoded stream; a
    page-size sweep pays one decode per distinct page size.

    ``derived(key, build)`` additionally caches arbitrary per-geometry
    derived products (the DSM interval builder stores its per-epoch page
    summaries there, so TreadMarks and HLRC share one interval build).

    Counters: ``decodes`` = epoch decodings actually performed, ``hits`` =
    requests served from cache; ``distinct_geometries`` = geometry keys
    seen.  Traces are sealed after construction, so entries never go
    stale; if you do mutate a trace in place, call :meth:`clear`.

    ``max_epochs`` bounds how many decoded epochs are retained at once
    (LRU across all geometries); ``None`` — the default — retains
    everything, which is what the sweep engines rely on.  Lazily decoded
    compressed traces set a bound so a long replay does not hold every
    epoch's expanded streams in memory.
    """

    def __init__(self, trace: Trace, max_epochs: int | None = None):
        self._trace = trace
        self._geometries: dict[tuple, dict[int, DecodedEpoch]] = {}
        self._derived: dict[tuple, object] = {}
        self._lru: OrderedDict[tuple, None] = OrderedDict()
        self.max_epochs = max_epochs
        self.decodes = 0
        self.hits = 0
        self.evictions = 0

    @property
    def distinct_geometries(self) -> int:
        return len(self._geometries)

    @staticmethod
    def geometry_key(layout: Layout, unit: int) -> tuple:
        return (layout.regions, layout.bases, layout.align, unit)

    def epoch(self, layout: Layout, unit: int, index: int) -> DecodedEpoch:
        """Decoded streams for ``trace.epochs[index]`` under this geometry."""
        gkey = self.geometry_key(layout, unit)
        per_geometry = self._geometries.setdefault(gkey, {})
        decoded = per_geometry.get(index)
        if decoded is None:
            self.decodes += 1
            decoded = decode_epoch(self._trace.epochs[index], layout, unit)
            per_geometry[index] = decoded
            if self.max_epochs is not None:
                self._lru[(gkey, index)] = None
                while len(self._lru) > self.max_epochs:
                    (old_gkey, old_index), _ = self._lru.popitem(last=False)
                    self._geometries[old_gkey].pop(old_index, None)
                    self.evictions += 1
        else:
            self.hits += 1
            if self.max_epochs is not None:
                self._lru.move_to_end((gkey, index))
        return decoded

    def derived(self, key: tuple, build):
        """Get-or-build an arbitrary derived product cached on this trace."""
        try:
            value = self._derived[key]
        except KeyError:
            value = self._derived[key] = build()
        else:
            self.hits += 1
        return value

    def clear(self) -> None:
        self._geometries.clear()
        self._derived.clear()
        self._lru.clear()


def decode_memo(trace: Trace) -> DecodeMemo:
    """The decode memo attached to ``trace`` (created on first use).

    Traces may declare ``decode_memo_max_epochs`` (lazily decoded
    compressed traces do) to bound the memo's retention; everything else
    gets the unbounded memo the sweep engines rely on.
    """
    memo = getattr(trace, "_decode_memo", None)
    if memo is None:
        memo = DecodeMemo(
            trace, max_epochs=getattr(trace, "decode_memo_max_epochs", None)
        )
        trace._decode_memo = memo
    return memo
