"""Mapping object accesses to bytes, cache lines, and pages.

Traces are object-granularity (see :mod:`repro.trace.events`); the machine
models think in *consistency units* — 128-byte cache lines on the Origin
2000, 4/8/16 KB pages on the software DSMs.  A :class:`Layout` fixes the
byte address of every object and converts index arrays to unit ids, expanding
objects that straddle unit boundaries (a 680-byte Water-Spatial molecule
covers six 128-byte lines; a 96-byte Barnes-Hut body can straddle two).

Regions are placed back to back, each aligned to the *largest* unit of
interest (page-aligned), mirroring separate shared-memory allocations in the
original benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .events import RegionSpec, Trace

__all__ = ["Layout"]


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class Layout:
    """Byte placement of a trace's regions in one shared address space."""

    regions: tuple[RegionSpec, ...]
    bases: tuple[int, ...]
    align: int

    @classmethod
    def for_trace(cls, trace: Trace, align: int = 16384) -> "Layout":
        """Place each region of ``trace`` at the next ``align`` boundary."""
        return cls.for_regions(trace.regions, align=align)

    @classmethod
    def for_regions(
        cls, regions: list[RegionSpec] | tuple[RegionSpec, ...], align: int = 16384
    ) -> "Layout":
        if not _is_pow2(align):
            raise ValueError("align must be a power of two")
        bases = []
        cursor = 0
        for r in regions:
            bases.append(cursor)
            cursor += -(-r.nbytes // align) * align  # round up to alignment
        return cls(regions=tuple(regions), bases=tuple(bases), align=align)

    @property
    def total_bytes(self) -> int:
        if not self.regions:
            return 0
        last = len(self.regions) - 1
        return self.bases[last] + -(-self.regions[last].nbytes // self.align) * self.align

    def addresses(self, region: int, indices: np.ndarray) -> np.ndarray:
        """Start byte address of each object."""
        spec = self.regions[region]
        idx = np.asarray(indices, dtype=np.int64)
        return self.bases[region] + idx * spec.object_size

    def units(
        self, region: int, indices: np.ndarray, unit: int, expand: bool = True
    ) -> np.ndarray:
        """Consistency-unit id of each object access.

        With ``expand=True`` (default), an object spanning ``k`` units
        contributes ``k`` consecutive entries, preserving order; with
        ``expand=False`` only the unit of the object's first byte is
        returned (cheaper; exact when ``object_size`` divides ``unit``
        alignment).
        """
        if not _is_pow2(unit):
            raise ValueError("unit must be a power of two")
        spec = self.regions[region]
        start = self.addresses(region, indices)
        first = start >> unit.bit_length() - 1
        if not expand:
            return first
        last = (start + spec.object_size - 1) >> unit.bit_length() - 1
        span = last - first
        if not span.any():
            return first
        max_span = int(span.max()) + 1
        # Expand: for each access emit units first..last.  Vectorized via a
        # (n, max_span) grid masked to each object's true span.
        n = first.shape[0]
        grid = first[:, None] + np.arange(max_span, dtype=np.int64)[None, :]
        mask = np.arange(max_span, dtype=np.int64)[None, :] <= span[:, None]
        return grid[mask]

    def units_batch(
        self,
        regions: np.ndarray,
        indices: np.ndarray,
        unit: int,
        return_counts: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Unit ids for a mixed-region access stream, fully vectorized.

        Equivalent to concatenating :meth:`units` over per-burst slices —
        ``regions`` gives each access's region id — but runs as one numpy
        pass, so decoding an epoch is not bound by per-burst call
        overhead.  Order is preserved; objects straddling unit boundaries
        expand to consecutive entries exactly as :meth:`units` does.
        With ``return_counts=True`` also returns how many units each
        access expanded to, so callers can propagate per-access metadata
        (e.g. write flags) onto the expanded stream.
        """
        if not _is_pow2(unit):
            raise ValueError("unit must be a power of two")
        shift = unit.bit_length() - 1
        regions = np.asarray(regions, dtype=np.int64)
        bases = np.asarray(self.bases, dtype=np.int64)[regions]
        sizes = np.fromiter(
            (r.object_size for r in self.regions), dtype=np.int64, count=len(self.regions)
        )[regions]
        start = bases + np.asarray(indices, dtype=np.int64) * sizes
        first = start >> shift
        span = ((start + sizes - 1) >> shift) - first
        if not span.any():
            if return_counts:
                return first, np.ones(first.shape[0], dtype=np.int64)
            return first
        # Variable-length expansion: repeat each first unit, then add the
        # within-object offset 0..span reconstructed from the run starts.
        counts = span + 1
        out = np.repeat(first, counts)
        run_start = np.repeat(np.cumsum(counts) - counts, counts)
        out += np.arange(out.shape[0], dtype=np.int64)
        out -= run_start
        if return_counts:
            return out, counts
        return out

    def lines(self, region: int, indices: np.ndarray, line_size: int) -> np.ndarray:
        """Cache-line ids touched by the accesses (order-preserving, expanded)."""
        return self.units(region, indices, line_size, expand=True)

    def pages(self, region: int, indices: np.ndarray, page_size: int) -> np.ndarray:
        """Page ids touched by the accesses (order-preserving, expanded)."""
        return self.units(region, indices, page_size, expand=True)

    def region_pages(self, region: int, page_size: int) -> np.ndarray:
        """All page ids covered by a region, in address order."""
        spec = self.regions[region]
        base = self.bases[region]
        first = base // page_size
        last = (base + max(spec.nbytes, 1) - 1) // page_size
        return np.arange(first, last + 1, dtype=np.int64)
