"""Incremental trace construction for applications.

Applications drive a :class:`TraceBuilder` while computing: they declare
shared regions once, then inside each parallel phase record read/write bursts
per simulated processor, and call :meth:`TraceBuilder.barrier` where the real
benchmark has a barrier.  The result is a :class:`repro.trace.events.Trace`.
"""

from __future__ import annotations

import numpy as np

from .events import Burst, Epoch, RegionSpec, Trace

__all__ = ["TraceBuilder"]


class TraceBuilder:
    """Builds a :class:`Trace` epoch by epoch.

    Parameters
    ----------
    nprocs:
        Number of simulated processors.
    label:
        Label for the first epoch (see :meth:`barrier` for later ones).
    """

    def __init__(self, nprocs: int, label: str = ""):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self._trace = Trace(nprocs=nprocs)
        self._current = Epoch(nprocs=nprocs, label=label)
        self._finished = False

    @property
    def nprocs(self) -> int:
        return self._trace.nprocs

    def add_region(self, name: str, num_objects: int, object_size: int) -> int:
        """Declare a shared object array; returns its region id."""
        if any(r.name == name for r in self._trace.regions):
            raise ValueError(f"region {name!r} already declared")
        self._trace.regions.append(RegionSpec(name, num_objects, object_size))
        return len(self._trace.regions) - 1

    def _check_proc(self, proc: int) -> None:
        if not 0 <= proc < self.nprocs:
            raise ValueError(f"proc {proc} out of range [0, {self.nprocs})")
        if self._finished:
            raise RuntimeError("trace already finished")

    def read(self, proc: int, region: int, indices: np.ndarray) -> None:
        """Record a read burst by ``proc`` over ``indices`` of ``region``."""
        self._check_proc(proc)
        idx = np.ascontiguousarray(indices, dtype=np.int64).ravel()
        if idx.size:
            self._current.bursts[proc].append(Burst(region, idx, is_write=False))

    def write(self, proc: int, region: int, indices: np.ndarray) -> None:
        """Record a write burst by ``proc`` over ``indices`` of ``region``."""
        self._check_proc(proc)
        idx = np.ascontiguousarray(indices, dtype=np.int64).ravel()
        if idx.size:
            self._current.bursts[proc].append(Burst(region, idx, is_write=True))

    def update(self, proc: int, region: int, indices: np.ndarray) -> None:
        """Read-modify-write burst (a read burst followed by a write burst)."""
        self.read(proc, region, indices)
        self.write(proc, region, indices)

    def work(self, proc: int, units: float) -> None:
        """Charge abstract compute units to ``proc`` in the current epoch."""
        self._check_proc(proc)
        self._current.work[proc] += units

    def lock(self, proc: int, acquires: int = 1) -> None:
        """Record lock acquisitions by ``proc`` in the current epoch."""
        self._check_proc(proc)
        self._current.lock_acquires[proc] += acquires

    def barrier(self, next_label: str = "") -> None:
        """Close the current epoch (a barrier) and open the next one."""
        if self._finished:
            raise RuntimeError("trace already finished")
        self._trace.epochs.append(self._current)
        self._current = Epoch(nprocs=self.nprocs, label=next_label)

    def finish(self) -> Trace:
        """Close the trailing epoch (if non-empty) and return the trace."""
        if self._finished:
            raise RuntimeError("trace already finished")
        if any(self._current.bursts[p] for p in range(self.nprocs)) or (
            self._current.work.any() or self._current.lock_acquires.any()
        ):
            self._trace.epochs.append(self._current)
        self._finished = True
        self._trace.validate()
        return self._trace
