"""Incremental trace construction for applications.

Applications drive a :class:`TraceBuilder` while computing: they declare
shared regions once, then inside each parallel phase record read/write bursts
per simulated processor, and call :meth:`TraceBuilder.barrier` where the real
benchmark has a barrier.

By default the builder produces a columnar :class:`repro.trace.packed.PackedTrace`:
recorded bursts are *staged* as raw ``(region, is_write, indices)`` tuples and
sealed into :class:`PackedEpoch` columns at each barrier — one concatenation
per column, after which every consumer works on zero-copy views.  Pass
``packed=False`` (or flip :func:`set_packed_default`) to build the legacy
burst-list :class:`repro.trace.events.Trace` instead; the benchmark suite uses
that to measure the packed pipeline against the burst-list baseline through
unchanged application code.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from .events import Burst, Epoch, RaggedBatch, RegionSpec, Trace
from .packed import PackedEpoch, PackedTrace

__all__ = ["TraceBuilder", "set_packed_default"]


def _normalize_indices(indices) -> np.ndarray:
    """1-D contiguous int64 view of ``indices`` — no copy when it already
    is one (the satellite fix: slicing views stage as-is)."""
    idx = indices
    if not (
        isinstance(idx, np.ndarray)
        and idx.dtype == np.int64
        and idx.ndim == 1
        and idx.flags["C_CONTIGUOUS"]
    ):
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        if idx.ndim != 1:
            idx = idx.reshape(-1)
    return idx

_PACKED_DEFAULT = True


def set_packed_default(value: bool) -> bool:
    """Set whether new builders produce packed traces; returns the old value."""
    global _PACKED_DEFAULT
    previous = _PACKED_DEFAULT
    _PACKED_DEFAULT = bool(value)
    return previous


class TraceBuilder:
    """Builds a :class:`Trace` epoch by epoch.

    Parameters
    ----------
    nprocs:
        Number of simulated processors.
    label:
        Label for the first epoch (see :meth:`barrier` for later ones).
    packed:
        ``True`` to seal epochs into columnar :class:`PackedEpoch` storage
        (the default), ``False`` for legacy burst lists, ``None`` to follow
        :func:`set_packed_default`.
    """

    def __init__(self, nprocs: int, label: str = "", packed: bool | None = None):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self._packed = _PACKED_DEFAULT if packed is None else bool(packed)
        self._trace = PackedTrace(nprocs=nprocs) if self._packed else Trace(nprocs=nprocs)
        self._label = label
        # Each staged entry is a plain (region, is_write, indices) tuple or
        # a RaggedBatch; PackedEpoch.seal and the legacy path handle both.
        self._staged: list[list[tuple[int, bool, np.ndarray] | RaggedBatch]] = [
            [] for _ in range(nprocs)
        ]
        self._work = np.zeros(nprocs, dtype=np.float64)
        self._locks = np.zeros(nprocs, dtype=np.int64)
        self._finished = False
        #: Cumulative seconds spent sealing epochs (the packing step shared
        #: by every emit style); lets benchmarks split staging from sealing.
        self.seal_seconds = 0.0

    @property
    def nprocs(self) -> int:
        return self._trace.nprocs

    def add_region(self, name: str, num_objects: int, object_size: int) -> int:
        """Declare a shared object array; returns its region id."""
        if any(r.name == name for r in self._trace.regions):
            raise ValueError(f"region {name!r} already declared")
        self._trace.regions.append(RegionSpec(name, num_objects, object_size))
        return len(self._trace.regions) - 1

    def _check_proc(self, proc: int) -> None:
        if not 0 <= proc < self.nprocs:
            raise ValueError(f"proc {proc} out of range [0, {self.nprocs})")
        if self._finished:
            raise RuntimeError("trace already finished")

    def _record(self, proc: int, region: int, indices: np.ndarray, write: bool) -> None:
        # The single dtype conversion of the pipeline: downstream code
        # (Burst.__post_init__, PackedEpoch.seal) asserts/keeps int64 and
        # never copies again.  Already-contiguous int64 input stages as-is.
        idx = _normalize_indices(indices)
        if idx.shape[0]:
            self._staged[proc].append((region, write, idx))

    def read(self, proc: int, region: int, indices: np.ndarray) -> None:
        """Record a read burst by ``proc`` over ``indices`` of ``region``."""
        self._check_proc(proc)
        self._record(proc, region, indices, write=False)

    def write(self, proc: int, region: int, indices: np.ndarray) -> None:
        """Record a write burst by ``proc`` over ``indices`` of ``region``."""
        self._check_proc(proc)
        self._record(proc, region, indices, write=True)

    def update(self, proc: int, region: int, indices: np.ndarray) -> None:
        """Read-modify-write burst (a read burst followed by a write burst)."""
        self.read(proc, region, indices)
        self.write(proc, region, indices)

    # ---- ragged (CSR) emission -------------------------------------------

    def _normalize_offsets(self, offsets, length: int) -> np.ndarray:
        if isinstance(offsets, (int, np.integer)):
            width = int(offsets)
            if width <= 0:
                raise ValueError("uniform burst width must be positive")
            if length % width:
                raise ValueError(
                    f"index column of {length} does not split into bursts of {width}"
                )
            return np.arange(0, length + width, width, dtype=np.int64)
        offs = offsets
        if not (
            isinstance(offs, np.ndarray)
            and offs.dtype == np.int64
            and offs.ndim == 1
            and offs.flags["C_CONTIGUOUS"]
        ):
            offs = np.ascontiguousarray(offsets, dtype=np.int64)
        if offs.ndim != 1 or offs.shape[0] < 1:
            raise ValueError("burst offsets must be a 1-D array of length >= 1")
        if offs[0] != 0 or int(offs[-1]) != length:
            raise ValueError(
                "burst offsets must start at 0 and end at the index column length"
            )
        if offs.shape[0] > 1 and (np.diff(offs) < 0).any():
            raise ValueError("burst offsets must be non-decreasing")
        return offs

    def _stage_ragged(self, proc: int, lanes) -> None:
        norm: list[tuple[int, bool, np.ndarray, np.ndarray]] = []
        nbursts = -1
        total = 0
        for region, write, indices, offsets in lanes:
            idx = _normalize_indices(indices)
            offs = self._normalize_offsets(offsets, idx.shape[0])
            k = offs.shape[0] - 1
            if nbursts < 0:
                nbursts = k
            elif k != nbursts:
                raise ValueError(
                    f"ragged lanes disagree on burst count ({k} != {nbursts})"
                )
            total += idx.shape[0]
            norm.append((int(region), bool(write), idx, offs))
        if nbursts > 0 and total > 0:
            self._staged[proc].append(RaggedBatch(norm, nbursts, total))

    def read_ragged(self, proc: int, region: int, indices, offsets) -> None:
        """Record ``k`` read bursts at once, CSR-style.

        ``indices`` is the flat concatenation of the burst index runs;
        burst ``j`` is ``indices[offsets[j]:offsets[j + 1]]``
        (``offsets`` has ``k + 1`` entries — or pass an int ``w`` for
        uniform bursts of width ``w``).  Equivalent to, but much cheaper
        than, ``k`` :meth:`read` calls: zero-length bursts are dropped the
        same way, and the sealed trace is byte-identical.
        """
        self._check_proc(proc)
        self._stage_ragged(proc, [(region, False, indices, offsets)])

    def write_ragged(self, proc: int, region: int, indices, offsets) -> None:
        """Record ``k`` write bursts at once, CSR-style (see :meth:`read_ragged`)."""
        self._check_proc(proc)
        self._stage_ragged(proc, [(region, True, indices, offsets)])

    def update_ragged(self, proc: int, region: int, indices, offsets) -> None:
        """Record ``k`` read-modify-write bursts at once, CSR-style.

        Equivalent to ``k`` :meth:`update` calls: per burst ``j``, a read
        burst then a write burst over the same run — i.e. the interleaved
        sequence R0 W0 R1 W1 ..., not one bulk read then one bulk write.
        """
        self._check_proc(proc)
        self._stage_ragged(
            proc,
            [(region, False, indices, offsets), (region, True, indices, offsets)],
        )

    def emit_ragged(self, proc: int, lanes) -> None:
        """Record an interleaved multi-lane burst pattern, CSR-style.

        ``lanes`` is a sequence of ``(region, is_write, indices, offsets)``
        tuples, all with the same burst count ``k``.  The recorded burst
        order is burst-major: burst ``j`` of lane 0, then burst ``j`` of
        lane 1, ... before any burst ``j + 1`` — the order a per-object
        loop emitting one burst per lane per object would produce, with
        zero-length bursts dropped just like empty :meth:`read` calls.
        Staging is O(lanes); the expansion to columns happens vectorized at
        the next :meth:`barrier`.
        """
        self._check_proc(proc)
        self._stage_ragged(proc, lanes)

    def work(self, proc: int, units: float) -> None:
        """Charge abstract compute units to ``proc`` in the current epoch."""
        self._check_proc(proc)
        self._work[proc] += units

    def lock(self, proc: int, acquires: int = 1) -> None:
        """Record lock acquisitions by ``proc`` in the current epoch."""
        self._check_proc(proc)
        self._locks[proc] += acquires

    def _seal_epoch(self):
        t0 = perf_counter()
        n = self.nprocs
        if self._packed:
            epoch = PackedEpoch.seal(n, self._label, self._staged, self._work, self._locks)
        else:
            epoch = Epoch(nprocs=n, label=self._label)
            for p in range(n):
                bl: list[Burst] = []
                for entry in self._staged[p]:
                    if type(entry) is tuple:
                        region, write, idx = entry
                        bl.append(Burst(region, idx, is_write=write))
                    else:
                        bl.extend(entry.iter_bursts())
                epoch.bursts[p] = bl
            epoch.work = self._work
            epoch.lock_acquires = self._locks
        self._staged = [[] for _ in range(n)]
        self._work = np.zeros(n, dtype=np.float64)
        self._locks = np.zeros(n, dtype=np.int64)
        self.seal_seconds += perf_counter() - t0
        return epoch

    def _current_nonempty(self) -> bool:
        return (
            any(self._staged[p] for p in range(self.nprocs))
            or self._work.any()
            or self._locks.any()
        )

    def barrier(self, next_label: str = "") -> None:
        """Close the current epoch (a barrier) and open the next one."""
        if self._finished:
            raise RuntimeError("trace already finished")
        self._trace.epochs.append(self._seal_epoch())
        self._label = next_label

    def finish(self) -> Trace:
        """Close the trailing epoch (if non-empty) and return the trace."""
        if self._finished:
            raise RuntimeError("trace already finished")
        if self._current_nonempty():
            self._trace.epochs.append(self._seal_epoch())
        self._finished = True
        self._trace.validate()
        return self._trace
