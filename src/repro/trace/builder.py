"""Incremental trace construction for applications.

Applications drive a :class:`TraceBuilder` while computing: they declare
shared regions once, then inside each parallel phase record read/write bursts
per simulated processor, and call :meth:`TraceBuilder.barrier` where the real
benchmark has a barrier.

By default the builder produces a columnar :class:`repro.trace.packed.PackedTrace`:
recorded bursts are *staged* as raw ``(region, is_write, indices)`` tuples and
sealed into :class:`PackedEpoch` columns at each barrier — one concatenation
per column, after which every consumer works on zero-copy views.  Pass
``packed=False`` (or flip :func:`set_packed_default`) to build the legacy
burst-list :class:`repro.trace.events.Trace` instead; the benchmark suite uses
that to measure the packed pipeline against the burst-list baseline through
unchanged application code.
"""

from __future__ import annotations

import numpy as np

from .events import Burst, Epoch, RegionSpec, Trace
from .packed import PackedEpoch, PackedTrace

__all__ = ["TraceBuilder", "set_packed_default"]

_PACKED_DEFAULT = True


def set_packed_default(value: bool) -> bool:
    """Set whether new builders produce packed traces; returns the old value."""
    global _PACKED_DEFAULT
    previous = _PACKED_DEFAULT
    _PACKED_DEFAULT = bool(value)
    return previous


class TraceBuilder:
    """Builds a :class:`Trace` epoch by epoch.

    Parameters
    ----------
    nprocs:
        Number of simulated processors.
    label:
        Label for the first epoch (see :meth:`barrier` for later ones).
    packed:
        ``True`` to seal epochs into columnar :class:`PackedEpoch` storage
        (the default), ``False`` for legacy burst lists, ``None`` to follow
        :func:`set_packed_default`.
    """

    def __init__(self, nprocs: int, label: str = "", packed: bool | None = None):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self._packed = _PACKED_DEFAULT if packed is None else bool(packed)
        self._trace = PackedTrace(nprocs=nprocs) if self._packed else Trace(nprocs=nprocs)
        self._label = label
        self._staged: list[list[tuple[int, bool, np.ndarray]]] = [
            [] for _ in range(nprocs)
        ]
        self._work = np.zeros(nprocs, dtype=np.float64)
        self._locks = np.zeros(nprocs, dtype=np.int64)
        self._finished = False

    @property
    def nprocs(self) -> int:
        return self._trace.nprocs

    def add_region(self, name: str, num_objects: int, object_size: int) -> int:
        """Declare a shared object array; returns its region id."""
        if any(r.name == name for r in self._trace.regions):
            raise ValueError(f"region {name!r} already declared")
        self._trace.regions.append(RegionSpec(name, num_objects, object_size))
        return len(self._trace.regions) - 1

    def _check_proc(self, proc: int) -> None:
        if not 0 <= proc < self.nprocs:
            raise ValueError(f"proc {proc} out of range [0, {self.nprocs})")
        if self._finished:
            raise RuntimeError("trace already finished")

    def _record(self, proc: int, region: int, indices: np.ndarray, write: bool) -> None:
        # The single dtype conversion of the pipeline: downstream code
        # (Burst.__post_init__, PackedEpoch.seal) asserts/keeps int64 and
        # never copies again.
        idx = np.ascontiguousarray(indices, dtype=np.int64).ravel()
        if idx.size:
            self._staged[proc].append((region, write, idx))

    def read(self, proc: int, region: int, indices: np.ndarray) -> None:
        """Record a read burst by ``proc`` over ``indices`` of ``region``."""
        self._check_proc(proc)
        self._record(proc, region, indices, write=False)

    def write(self, proc: int, region: int, indices: np.ndarray) -> None:
        """Record a write burst by ``proc`` over ``indices`` of ``region``."""
        self._check_proc(proc)
        self._record(proc, region, indices, write=True)

    def update(self, proc: int, region: int, indices: np.ndarray) -> None:
        """Read-modify-write burst (a read burst followed by a write burst)."""
        self.read(proc, region, indices)
        self.write(proc, region, indices)

    def work(self, proc: int, units: float) -> None:
        """Charge abstract compute units to ``proc`` in the current epoch."""
        self._check_proc(proc)
        self._work[proc] += units

    def lock(self, proc: int, acquires: int = 1) -> None:
        """Record lock acquisitions by ``proc`` in the current epoch."""
        self._check_proc(proc)
        self._locks[proc] += acquires

    def _seal_epoch(self):
        n = self.nprocs
        if self._packed:
            epoch = PackedEpoch.seal(n, self._label, self._staged, self._work, self._locks)
        else:
            epoch = Epoch(nprocs=n, label=self._label)
            for p in range(n):
                epoch.bursts[p] = [
                    Burst(region, idx, is_write=write)
                    for region, write, idx in self._staged[p]
                ]
            epoch.work = self._work
            epoch.lock_acquires = self._locks
        self._staged = [[] for _ in range(n)]
        self._work = np.zeros(n, dtype=np.float64)
        self._locks = np.zeros(n, dtype=np.int64)
        return epoch

    def _current_nonempty(self) -> bool:
        return (
            any(self._staged[p] for p in range(self.nprocs))
            or self._work.any()
            or self._locks.any()
        )

    def barrier(self, next_label: str = "") -> None:
        """Close the current epoch (a barrier) and open the next one."""
        if self._finished:
            raise RuntimeError("trace already finished")
        self._trace.epochs.append(self._seal_epoch())
        self._label = next_label

    def finish(self) -> Trace:
        """Close the trailing epoch (if non-empty) and return the trace."""
        if self._finished:
            raise RuntimeError("trace already finished")
        if self._current_nonempty():
            self._trace.epochs.append(self._seal_epoch())
        self._finished = True
        self._trace.validate()
        return self._trace
