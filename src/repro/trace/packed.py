"""Columnar (packed) trace representation.

:class:`repro.trace.events.Epoch` stores accesses as Python lists of
:class:`Burst` objects — convenient to build, expensive to consume: every
``flat()`` call re-concatenates the burst arrays, every simulator pass
walks Python objects, and serialization has to reassemble thousands of
small arrays.  This module is the columnar counterpart:

* a :class:`PackedEpoch` holds one epoch as CSR-style *columns* — three
  per-access arrays (``region``, ``index``, ``is_write``) plus a
  ``(nprocs + 1)`` offset table — so ``flat(proc)`` is an O(1) slice
  returning zero-copy views, and ``accesses(proc)`` is a subtraction;
* a :class:`PackedTrace` is a :class:`Trace` whose epochs are packed; its
  ``validate()`` is a vectorized per-region min/max over the columns and
  its ``total_accesses`` reads the offset tables.

Burst boundaries are preserved in side columns (``burst_region``,
``burst_write``, ``burst_length``) so the classic ``epoch.bursts[p]``
list-of-:class:`Burst` API keeps working as a lazily built compatibility
view; the Burst ``indices`` are views into the packed ``index`` column,
not copies.

Packed epochs are *sealed*: the columns are built once (at
:meth:`repro.trace.builder.TraceBuilder.barrier` time or by
:func:`pack_trace`) and never mutated afterwards.  That immutability is
what makes the zero-copy pipeline safe — simulators, the decode memo
(:mod:`repro.trace.layout`), and mmap-loaded traces
(:mod:`repro.trace.io`) all share the same buffers.
"""

from __future__ import annotations

import numpy as np

from .events import Burst, Epoch, RegionSpec, Trace

__all__ = ["PackedEpoch", "PackedTrace", "pack_epoch", "pack_trace", "unpack_trace"]


class PackedEpoch:
    """One barrier-separated epoch in columnar form.

    Attributes
    ----------
    offsets:
        ``(nprocs + 1,)`` int64; processor ``p``'s accesses occupy
        ``[offsets[p], offsets[p + 1])`` of the access columns.
    region, index, is_write:
        Per-access columns (int64, int64, bool), all of length
        ``offsets[-1]``, in program order per processor.
    burst_offsets:
        ``(nprocs + 1,)`` int64 into the burst columns.
    burst_region, burst_write, burst_length:
        Per-burst columns (the original burst structure, kept for the
        ``bursts`` compatibility view and for serialization).
    work, lock_acquires, label, nprocs:
        As on :class:`Epoch`.
    """

    __slots__ = (
        "nprocs",
        "label",
        "offsets",
        "region",
        "index",
        "is_write",
        "burst_offsets",
        "burst_region",
        "burst_write",
        "burst_length",
        "work",
        "lock_acquires",
        "_bursts",
    )

    def __init__(
        self,
        nprocs: int,
        label: str,
        offsets: np.ndarray,
        region: np.ndarray,
        index: np.ndarray,
        is_write: np.ndarray,
        burst_offsets: np.ndarray,
        burst_region: np.ndarray,
        burst_write: np.ndarray,
        burst_length: np.ndarray,
        work: np.ndarray,
        lock_acquires: np.ndarray,
    ):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.label = label
        self.offsets = offsets
        self.region = region
        self.index = index
        self.is_write = is_write
        self.burst_offsets = burst_offsets
        self.burst_region = burst_region
        self.burst_write = burst_write
        self.burst_length = burst_length
        self.work = work
        self.lock_acquires = lock_acquires
        self._bursts = None

    # ---- construction ----------------------------------------------------
    @classmethod
    def seal(
        cls,
        nprocs: int,
        label: str,
        staged: list[list[tuple[int, bool, np.ndarray]]],
        work: np.ndarray,
        lock_acquires: np.ndarray,
    ) -> "PackedEpoch":
        """Build the columns from per-proc ``(region, is_write, indices)``
        burst lists.  One concatenation per column — this is the single
        copy the whole downstream pipeline works from."""
        burst_region: list[int] = []
        burst_write: list[bool] = []
        burst_length: list[int] = []
        chunks: list[np.ndarray] = []
        offsets = np.zeros(nprocs + 1, dtype=np.int64)
        burst_offsets = np.zeros(nprocs + 1, dtype=np.int64)
        for p in range(nprocs):
            total = 0
            for region, write, idx in staged[p]:
                burst_region.append(region)
                burst_write.append(write)
                burst_length.append(idx.shape[0])
                chunks.append(idx)
                total += idx.shape[0]
            offsets[p + 1] = offsets[p] + total
            burst_offsets[p + 1] = len(burst_region)
        nbursts = len(burst_region)
        breg = np.array(burst_region, dtype=np.int64)
        bwri = np.array(burst_write, dtype=np.bool_)
        blen = np.array(burst_length, dtype=np.int64)
        if nbursts:
            index = np.concatenate(chunks)
            region_col = np.repeat(breg, blen)
            write_col = np.repeat(bwri, blen)
        else:
            index = np.empty(0, dtype=np.int64)
            region_col = np.empty(0, dtype=np.int64)
            write_col = np.empty(0, dtype=np.bool_)
        return cls(
            nprocs=nprocs,
            label=label,
            offsets=offsets,
            region=region_col,
            index=index,
            is_write=write_col,
            burst_offsets=burst_offsets,
            burst_region=breg,
            burst_write=bwri,
            burst_length=blen,
            work=work,
            lock_acquires=lock_acquires,
        )

    # ---- Epoch-compatible API --------------------------------------------
    def accesses(self, proc: int) -> int:
        """Total object accesses by processor ``proc`` — O(1)."""
        return int(self.offsets[proc + 1] - self.offsets[proc])

    def flat(self, proc: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(region, index, is_write)`` views for ``proc`` — O(1), no copy."""
        lo = self.offsets[proc]
        hi = self.offsets[proc + 1]
        return self.region[lo:hi], self.index[lo:hi], self.is_write[lo:hi]

    @property
    def total_accesses(self) -> int:
        return int(self.offsets[-1])

    @property
    def bursts(self) -> list[list[Burst]]:
        """Compatibility view: per-proc :class:`Burst` lists.

        Built lazily on first use; the Burst ``indices`` are slices of the
        packed ``index`` column (no copies).  Code on the hot path should
        use :meth:`flat` instead.
        """
        if self._bursts is None:
            out: list[list[Burst]] = []
            for p in range(self.nprocs):
                b0 = int(self.burst_offsets[p])
                b1 = int(self.burst_offsets[p + 1])
                lens = self.burst_length[b0:b1]
                starts = int(self.offsets[p]) + np.concatenate(
                    [np.zeros(1, dtype=np.int64), np.cumsum(lens, dtype=np.int64)]
                )
                out.append(
                    [
                        Burst(
                            int(self.burst_region[b0 + j]),
                            self.index[starts[j] : starts[j + 1]],
                            bool(self.burst_write[b0 + j]),
                        )
                        for j in range(b1 - b0)
                    ]
                )
            self._bursts = out
        return self._bursts

    def check_structure(self) -> None:
        """Raise ``ValueError`` if the columns are internally inconsistent."""
        n = self.nprocs
        if self.offsets.shape != (n + 1,) or self.burst_offsets.shape != (n + 1,):
            raise ValueError("packed epoch offset tables have wrong shape")
        if self.offsets[0] != 0 or self.burst_offsets[0] != 0:
            raise ValueError("packed epoch offsets must start at zero")
        if (np.diff(self.offsets) < 0).any() or (np.diff(self.burst_offsets) < 0).any():
            raise ValueError("packed epoch offsets must be non-decreasing")
        total = int(self.offsets[-1])
        for name in ("region", "index", "is_write"):
            col = getattr(self, name)
            if col.ndim != 1 or col.shape[0] != total:
                raise ValueError(f"packed epoch column {name!r} has wrong length")
        nbursts = int(self.burst_offsets[-1])
        for name in ("burst_region", "burst_write", "burst_length"):
            col = getattr(self, name)
            if col.ndim != 1 or col.shape[0] != nbursts:
                raise ValueError(f"packed epoch column {name!r} has wrong length")
        if nbursts and int(self.burst_length.sum()) != total:
            raise ValueError("packed epoch burst lengths do not cover the accesses")
        if self.work.shape != (n,) or self.lock_acquires.shape != (n,):
            raise ValueError("packed epoch work/lock arrays have wrong shape")


class PackedTrace(Trace):
    """A :class:`Trace` whose epochs are :class:`PackedEpoch` columns.

    Drop-in for every consumer of :class:`Trace` (the ``bursts`` view keeps
    legacy code working); simulators and statistics detect the packed form
    and take zero-copy vectorized paths, sharing decodings through the
    per-trace memo in :mod:`repro.trace.layout`.
    """

    @property
    def total_accesses(self) -> int:
        return sum(e.total_accesses for e in self.epochs)

    def validate(self) -> None:
        """Vectorized consistency check over the packed columns."""
        nregions = len(self.regions)
        limits = np.fromiter(
            (r.num_objects for r in self.regions), dtype=np.int64, count=nregions
        )
        for e in self.epochs:
            if e.nprocs != self.nprocs:
                raise ValueError("epoch/trace processor count mismatch")
            e.check_structure()
            if e.region.shape[0] == 0:
                continue
            rmin = int(e.region.min())
            rmax = int(e.region.max())
            if rmin < 0 or rmax >= nregions:
                raise ValueError(
                    f"burst references unknown region {rmin if rmin < 0 else rmax}"
                )
            bad = (e.index < 0) | (e.index >= limits[e.region])
            if bad.any():
                spec = self.regions[int(e.region[int(np.argmax(bad))])]
                raise ValueError(
                    f"burst indices out of range for region {spec.name!r}"
                )


def pack_epoch(epoch: Epoch) -> PackedEpoch:
    """Seal a burst-list :class:`Epoch` into a :class:`PackedEpoch`."""
    staged = [
        [(b.region, b.is_write, b.indices) for b in epoch.bursts[p]]
        for p in range(epoch.nprocs)
    ]
    return PackedEpoch.seal(
        epoch.nprocs,
        epoch.label,
        staged,
        np.asarray(epoch.work, dtype=np.float64).copy(),
        np.asarray(epoch.lock_acquires, dtype=np.int64).copy(),
    )


def pack_trace(trace: Trace) -> PackedTrace:
    """Columnar copy of ``trace`` (no-op views if it is already packed)."""
    if isinstance(trace, PackedTrace):
        return trace
    packed = PackedTrace(nprocs=trace.nprocs)
    packed.regions = list(trace.regions)
    packed.epochs = [pack_epoch(e) for e in trace.epochs]
    return packed


def unpack_trace(trace: Trace) -> Trace:
    """Burst-list copy of a (possibly packed) trace.

    Used by equivalence tests and the pipeline benchmark's burst-list
    baseline; the Burst index arrays are fresh copies, so the result has
    no aliasing with the packed columns (or an underlying mmap).
    """
    out = Trace(nprocs=trace.nprocs)
    out.regions = list(trace.regions)
    for e in trace.epochs:
        epoch = Epoch(nprocs=e.nprocs, label=e.label)
        epoch.work = np.asarray(e.work, dtype=np.float64).copy()
        epoch.lock_acquires = np.asarray(e.lock_acquires, dtype=np.int64).copy()
        for p in range(e.nprocs):
            epoch.bursts[p] = [
                Burst(b.region, np.array(b.indices, dtype=np.int64), b.is_write)
                for b in e.bursts[p]
            ]
        out.epochs.append(epoch)
    return out
