"""Columnar (packed) trace representation.

:class:`repro.trace.events.Epoch` stores accesses as Python lists of
:class:`Burst` objects — convenient to build, expensive to consume: every
``flat()`` call re-concatenates the burst arrays, every simulator pass
walks Python objects, and serialization has to reassemble thousands of
small arrays.  This module is the columnar counterpart:

* a :class:`PackedEpoch` holds one epoch as CSR-style *columns* — three
  per-access arrays (``region``, ``index``, ``is_write``) plus a
  ``(nprocs + 1)`` offset table — so ``flat(proc)`` is an O(1) slice
  returning zero-copy views, and ``accesses(proc)`` is a subtraction;
* a :class:`PackedTrace` is a :class:`Trace` whose epochs are packed; its
  ``validate()`` is a vectorized per-region min/max over the columns and
  its ``total_accesses`` reads the offset tables.

Burst boundaries are preserved in side columns (``burst_region``,
``burst_write``, ``burst_length``) so the classic ``epoch.bursts[p]``
list-of-:class:`Burst` API keeps working as a lazily built compatibility
view; the Burst ``indices`` are views into the packed ``index`` column,
not copies.

Packed epochs are *sealed*: the columns are built once (at
:meth:`repro.trace.builder.TraceBuilder.barrier` time or by
:func:`pack_trace`) and never mutated afterwards.  That immutability is
what makes the zero-copy pipeline safe — simulators, the decode memo
(:mod:`repro.trace.layout`), and mmap-loaded traces
(:mod:`repro.trace.io`) all share the same buffers.
"""

from __future__ import annotations

import numpy as np

from .events import Burst, Epoch, RegionSpec, Trace

__all__ = ["PackedEpoch", "PackedTrace", "pack_epoch", "pack_trace", "unpack_trace"]


class PackedEpoch:
    """One barrier-separated epoch in columnar form.

    Attributes
    ----------
    offsets:
        ``(nprocs + 1,)`` int64; processor ``p``'s accesses occupy
        ``[offsets[p], offsets[p + 1])`` of the access columns.
    region, index, is_write:
        Per-access columns (int64, int64, bool), all of length
        ``offsets[-1]``, in program order per processor.
    burst_offsets:
        ``(nprocs + 1,)`` int64 into the burst columns.
    burst_region, burst_write, burst_length:
        Per-burst columns (the original burst structure, kept for the
        ``bursts`` compatibility view and for serialization).
    work, lock_acquires, label, nprocs:
        As on :class:`Epoch`.
    """

    __slots__ = (
        "nprocs",
        "label",
        "offsets",
        "index",
        "burst_offsets",
        "burst_region",
        "burst_write",
        "burst_length",
        "work",
        "lock_acquires",
        "_region",
        "_is_write",
        "_bursts",
    )

    def __init__(
        self,
        nprocs: int,
        label: str,
        offsets: np.ndarray,
        index: np.ndarray,
        burst_offsets: np.ndarray,
        burst_region: np.ndarray,
        burst_write: np.ndarray,
        burst_length: np.ndarray,
        work: np.ndarray,
        lock_acquires: np.ndarray,
        region: np.ndarray | None = None,
        is_write: np.ndarray | None = None,
    ):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.label = label
        self.offsets = offsets
        self.index = index
        self.burst_offsets = burst_offsets
        self.burst_region = burst_region
        self.burst_write = burst_write
        self.burst_length = burst_length
        self.work = work
        self.lock_acquires = lock_acquires
        self._region = region
        self._is_write = is_write
        self._bursts = None

    # ---- lazy per-access columns -----------------------------------------
    # The burst columns fully determine the per-access region/is_write
    # columns (each burst's attributes repeated over its length), so they
    # are derived on first use: sealing, serialization and interval-based
    # consumers never need them, and skipping the two np.repeat passes is a
    # large share of the emission cost the ragged path removes.

    @property
    def region(self) -> np.ndarray:
        if self._region is None:
            self._region = np.repeat(self.burst_region, self.burst_length)
        return self._region

    @property
    def is_write(self) -> np.ndarray:
        if self._is_write is None:
            self._is_write = np.repeat(self.burst_write, self.burst_length)
        return self._is_write

    # ---- construction ----------------------------------------------------
    @classmethod
    def seal(
        cls,
        nprocs: int,
        label: str,
        staged: list[list],
        work: np.ndarray,
        lock_acquires: np.ndarray,
    ) -> "PackedEpoch":
        """Build the columns from per-proc staged burst lists.

        Each staged entry is either a plain ``(region, is_write, indices)``
        tuple or a :class:`repro.trace.events.RaggedBatch`; batches are
        expanded vectorized (never into per-burst Python objects), so a
        ragged-emitting application seals in O(batches) Python work.  The
        per-access total is known up front, so the flat index column is
        allocated once and every entry — plain or ragged — writes its
        slice directly; there is no per-column concatenation of the big
        access data, only of the small burst columns."""
        offsets = np.zeros(nprocs + 1, dtype=np.int64)
        burst_offsets = np.zeros(nprocs + 1, dtype=np.int64)
        total = 0
        for p in range(nprocs):
            for entry in staged[p]:
                total += entry[2].shape[0] if type(entry) is tuple else entry.total
            offsets[p + 1] = total
        index = np.empty(total, dtype=np.int64)

        breg_parts: list[np.ndarray] = []
        bwri_parts: list[np.ndarray] = []
        blen_parts: list[np.ndarray] = []
        # Pending run of plain tuples, flushed to arrays on batch boundaries
        # so the burst order is preserved.
        run_region: list[int] = []
        run_write: list[bool] = []
        run_length: list[int] = []

        def _flush() -> None:
            if run_region:
                breg_parts.append(np.array(run_region, dtype=np.int64))
                bwri_parts.append(np.array(run_write, dtype=np.bool_))
                blen_parts.append(np.array(run_length, dtype=np.int64))
                run_region.clear()
                run_write.clear()
                run_length.clear()

        pos = 0
        nbursts = 0
        for p in range(nprocs):
            for entry in staged[p]:
                if type(entry) is tuple:
                    region, write, idx = entry
                    ln = idx.shape[0]
                    run_region.append(region)
                    run_write.append(write)
                    run_length.append(ln)
                    index[pos : pos + ln] = idx
                    pos += ln
                    nbursts += 1
                else:
                    _flush()
                    ereg, ewri, elen, _ = entry.expand(
                        out=index[pos : pos + entry.total]
                    )
                    breg_parts.append(ereg)
                    bwri_parts.append(ewri)
                    blen_parts.append(elen)
                    pos += entry.total
                    nbursts += elen.shape[0]
            burst_offsets[p + 1] = nbursts
        _flush()
        if nbursts:
            breg = np.concatenate(breg_parts)
            bwri = np.concatenate(bwri_parts)
            blen = np.concatenate(blen_parts)
        else:
            breg = np.empty(0, dtype=np.int64)
            bwri = np.empty(0, dtype=np.bool_)
            blen = np.empty(0, dtype=np.int64)
        return cls(
            nprocs=nprocs,
            label=label,
            offsets=offsets,
            index=index,
            burst_offsets=burst_offsets,
            burst_region=breg,
            burst_write=bwri,
            burst_length=blen,
            work=work,
            lock_acquires=lock_acquires,
        )

    # ---- Epoch-compatible API --------------------------------------------
    def accesses(self, proc: int) -> int:
        """Total object accesses by processor ``proc`` — O(1)."""
        return int(self.offsets[proc + 1] - self.offsets[proc])

    def flat(self, proc: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(region, index, is_write)`` views for ``proc`` — O(1), no copy."""
        lo = self.offsets[proc]
        hi = self.offsets[proc + 1]
        return self.region[lo:hi], self.index[lo:hi], self.is_write[lo:hi]

    def burst_slice(self, proc: int) -> tuple[int, int, int, int]:
        """``(lo, hi, b0, b1)`` bounds of ``proc`` in the access/burst columns."""
        return (
            int(self.offsets[proc]),
            int(self.offsets[proc + 1]),
            int(self.burst_offsets[proc]),
            int(self.burst_offsets[proc + 1]),
        )

    def write_flags(self, proc: int) -> np.ndarray:
        """Per-access write flags for ``proc``, built from the burst columns.

        Unlike ``flat(proc)[2]`` this never materializes (or caches) the
        whole epoch's derived ``is_write`` column — only the processor's
        slice is expanded, so replay paths that only need one processor at
        a time stay O(proc accesses) in memory traffic.
        """
        if self._is_write is not None:
            return self._is_write[self.offsets[proc] : self.offsets[proc + 1]]
        b0 = int(self.burst_offsets[proc])
        b1 = int(self.burst_offsets[proc + 1])
        return np.repeat(self.burst_write[b0:b1], self.burst_length[b0:b1])

    @property
    def total_accesses(self) -> int:
        return int(self.offsets[-1])

    @property
    def bursts(self) -> list[list[Burst]]:
        """Compatibility view: per-proc :class:`Burst` lists.

        Built lazily on first use; the Burst ``indices`` are slices of the
        packed ``index`` column (no copies).  Code on the hot path should
        use :meth:`flat` instead.
        """
        if self._bursts is None:
            out: list[list[Burst]] = []
            for p in range(self.nprocs):
                b0 = int(self.burst_offsets[p])
                b1 = int(self.burst_offsets[p + 1])
                lens = self.burst_length[b0:b1]
                starts = int(self.offsets[p]) + np.concatenate(
                    [np.zeros(1, dtype=np.int64), np.cumsum(lens, dtype=np.int64)]
                )
                out.append(
                    [
                        Burst(
                            int(self.burst_region[b0 + j]),
                            self.index[starts[j] : starts[j + 1]],
                            bool(self.burst_write[b0 + j]),
                        )
                        for j in range(b1 - b0)
                    ]
                )
            self._bursts = out
        return self._bursts

    def check_structure(self) -> None:
        """Raise ``ValueError`` if the columns are internally inconsistent."""
        n = self.nprocs
        if self.offsets.shape != (n + 1,) or self.burst_offsets.shape != (n + 1,):
            raise ValueError("packed epoch offset tables have wrong shape")
        if self.offsets[0] != 0 or self.burst_offsets[0] != 0:
            raise ValueError("packed epoch offsets must start at zero")
        if (np.diff(self.offsets) < 0).any() or (np.diff(self.burst_offsets) < 0).any():
            raise ValueError("packed epoch offsets must be non-decreasing")
        total = int(self.offsets[-1])
        # region/is_write are derived from the burst columns when not
        # supplied, so only externally provided ones can be inconsistent.
        names = ("index",) + tuple(
            name
            for name, col in (("region", self._region), ("is_write", self._is_write))
            if col is not None
        )
        for name in names:
            col = getattr(self, name)
            if col.ndim != 1 or col.shape[0] != total:
                raise ValueError(f"packed epoch column {name!r} has wrong length")
        nbursts = int(self.burst_offsets[-1])
        for name in ("burst_region", "burst_write", "burst_length"):
            col = getattr(self, name)
            if col.ndim != 1 or col.shape[0] != nbursts:
                raise ValueError(f"packed epoch column {name!r} has wrong length")
        if nbursts and int(self.burst_length.sum()) != total:
            raise ValueError("packed epoch burst lengths do not cover the accesses")
        if self.work.shape != (n,) or self.lock_acquires.shape != (n,):
            raise ValueError("packed epoch work/lock arrays have wrong shape")


class PackedTrace(Trace):
    """A :class:`Trace` whose epochs are :class:`PackedEpoch` columns.

    Drop-in for every consumer of :class:`Trace` (the ``bursts`` view keeps
    legacy code working); simulators and statistics detect the packed form
    and take zero-copy vectorized paths, sharing decodings through the
    per-trace memo in :mod:`repro.trace.layout`.
    """

    @property
    def total_accesses(self) -> int:
        return sum(e.total_accesses for e in self.epochs)

    def validate(self) -> None:
        """Vectorized consistency check over the packed columns.

        Works at burst granularity — a per-burst min/max via ``reduceat``
        against the burst's region limit — so it never materializes the
        derived per-access region column.
        """
        nregions = len(self.regions)
        limits = np.fromiter(
            (r.num_objects for r in self.regions), dtype=np.int64, count=nregions
        )
        for e in self.epochs:
            if e.nprocs != self.nprocs:
                raise ValueError("epoch/trace processor count mismatch")
            e.check_structure()
            breg = np.asarray(e.burst_region)
            if breg.shape[0] == 0:
                continue
            rmin = int(breg.min())
            rmax = int(breg.max())
            if rmin < 0 or rmax >= nregions:
                raise ValueError(
                    f"burst references unknown region {rmin if rmin < 0 else rmax}"
                )
            blen = np.asarray(e.burst_length)
            nz = blen > 0
            if not nz.any():
                continue
            starts = np.empty(blen.shape[0], dtype=np.int64)
            starts[0] = 0
            np.cumsum(blen[:-1], out=starts[1:])
            nz_starts = starts[nz]
            bmin = np.minimum.reduceat(e.index, nz_starts)
            bmax = np.maximum.reduceat(e.index, nz_starts)
            lim = limits[breg[nz]]
            bad = (bmin < 0) | (bmax >= lim)
            if bad.any():
                spec = self.regions[int(breg[nz][int(np.argmax(bad))])]
                raise ValueError(
                    f"burst indices out of range for region {spec.name!r}"
                )


def pack_epoch(epoch: Epoch) -> PackedEpoch:
    """Seal a burst-list :class:`Epoch` into a :class:`PackedEpoch`."""
    staged = [
        [(b.region, b.is_write, b.indices) for b in epoch.bursts[p]]
        for p in range(epoch.nprocs)
    ]
    return PackedEpoch.seal(
        epoch.nprocs,
        epoch.label,
        staged,
        np.asarray(epoch.work, dtype=np.float64).copy(),
        np.asarray(epoch.lock_acquires, dtype=np.int64).copy(),
    )


def pack_trace(trace: Trace) -> PackedTrace:
    """Columnar copy of ``trace`` (no-op views if it is already packed)."""
    if isinstance(trace, PackedTrace):
        return trace
    packed = PackedTrace(nprocs=trace.nprocs)
    packed.regions = list(trace.regions)
    packed.epochs = [pack_epoch(e) for e in trace.epochs]
    return packed


def unpack_trace(trace: Trace) -> Trace:
    """Burst-list copy of a (possibly packed) trace.

    Used by equivalence tests and the pipeline benchmark's burst-list
    baseline; the Burst index arrays are fresh copies, so the result has
    no aliasing with the packed columns (or an underlying mmap).
    """
    out = Trace(nprocs=trace.nprocs)
    out.regions = list(trace.regions)
    for e in trace.epochs:
        epoch = Epoch(nprocs=e.nprocs, label=e.label)
        epoch.work = np.asarray(e.work, dtype=np.float64).copy()
        epoch.lock_acquires = np.asarray(e.lock_acquires, dtype=np.int64).copy()
        for p in range(e.nprocs):
            epoch.bursts[p] = [
                Burst(b.region, np.array(b.indices, dtype=np.int64), b.is_write)
                for b in e.bursts[p]
            ]
        out.epochs.append(epoch)
    return out
