"""Shared-memory access trace representation.

The five applications are *real* computations, but what the machine
simulators need from them is the stream of shared-memory accesses each
simulated processor performs, segmented by synchronization.  This module
defines that representation:

* a :class:`RegionSpec` describes one shared object array (name, object
  count, object size in bytes — the paper's Table 1 column);
* a :class:`Burst` is a run of object-granularity accesses (read or write)
  by one processor to one region, in traversal order;
* an :class:`Epoch` is everything between two barriers: per-processor burst
  lists plus lock-acquisition and work counters;
* a :class:`Trace` is the whole run: the region table plus the epoch list.

Traces are *object-granularity*: they record which object was touched, not
which byte.  The mapping to bytes/lines/pages lives in
:mod:`repro.trace.layout` so one trace can be replayed against machines with
different consistency-unit sizes (the paper's central variable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RegionSpec", "Burst", "Epoch", "Trace"]


@dataclass(frozen=True)
class RegionSpec:
    """One shared object array.

    Parameters
    ----------
    name:
        Region name, unique within a trace (``"particles"``, ``"cells"``...).
    num_objects:
        Number of objects in the array.
    object_size:
        Bytes per object — e.g. 104 for a Barnes-Hut body, 680 for a
        Water-Spatial molecule (Table 1 of the paper).
    """

    name: str
    num_objects: int
    object_size: int

    def __post_init__(self) -> None:
        if self.num_objects < 0:
            raise ValueError("num_objects must be non-negative")
        if self.object_size <= 0:
            raise ValueError("object_size must be positive")

    @property
    def nbytes(self) -> int:
        return self.num_objects * self.object_size


@dataclass(frozen=True)
class Burst:
    """A run of accesses by one processor to one region.

    ``indices`` preserves traversal order and multiplicity; both matter to
    the cache/TLB simulators.  ``is_write`` applies to the whole burst
    (applications emit separate bursts for reads and writes).
    """

    region: int
    indices: np.ndarray
    is_write: bool

    def __post_init__(self) -> None:
        idx = self.indices
        # Callers on the hot path (TraceBuilder, the packed compatibility
        # view) hand in already-contiguous int64 arrays; converting again
        # here would copy every burst twice.  Only normalize when needed.
        if not (
            isinstance(idx, np.ndarray)
            and idx.dtype == np.int64
            and idx.flags["C_CONTIGUOUS"]
        ):
            idx = np.ascontiguousarray(idx, dtype=np.int64)
            object.__setattr__(self, "indices", idx)
        if idx.ndim != 1:
            raise ValueError("burst indices must be 1-D")

    def __len__(self) -> int:
        return int(self.indices.shape[0])


@dataclass
class Epoch:
    """All shared accesses between two consecutive barriers.

    Attributes
    ----------
    bursts:
        ``bursts[p]`` is the ordered burst list of processor ``p``.
    work:
        ``work[p]`` — abstract compute units (e.g. pair interactions)
        performed by processor ``p``; drives the timing model.
    lock_acquires:
        ``lock_acquires[p]`` — number of lock acquisitions by ``p``.
    label:
        Phase name for per-phase breakdowns (paper's Table 4).
    """

    nprocs: int
    label: str = ""
    bursts: list[list[Burst]] = field(default_factory=list)
    work: np.ndarray = field(default=None)  # type: ignore[assignment]
    lock_acquires: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ValueError("nprocs must be positive")
        if not self.bursts:
            self.bursts = [[] for _ in range(self.nprocs)]
        if self.work is None:
            self.work = np.zeros(self.nprocs, dtype=np.float64)
        if self.lock_acquires is None:
            self.lock_acquires = np.zeros(self.nprocs, dtype=np.int64)

    def accesses(self, proc: int) -> int:
        """Total object accesses by processor ``proc`` in this epoch."""
        return sum(len(b) for b in self.bursts[proc])

    def flat(self, proc: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten a processor's bursts to ``(region, index, is_write)`` arrays."""
        bl = self.bursts[proc]
        if not bl:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
            )
        regions = np.concatenate(
            [np.full(len(b), b.region, dtype=np.int64) for b in bl]
        )
        indices = np.concatenate([b.indices for b in bl])
        writes = np.concatenate([np.full(len(b), b.is_write, dtype=bool) for b in bl])
        return regions, indices, writes


@dataclass
class Trace:
    """A full run: region table + ordered epoch list.

    The epoch order is the global synchronization order (epochs are
    barrier-separated, so every processor's epoch ``e`` accesses
    happen-before every processor's epoch ``e+1`` accesses — the property
    the lazy-release-consistency models rely on).
    """

    nprocs: int
    regions: list[RegionSpec] = field(default_factory=list)
    epochs: list[Epoch] = field(default_factory=list)

    def region_id(self, name: str) -> int:
        # Called inside per-epoch loops (trace.stats, experiments); a linear
        # scan per call is O(regions) each time.  Memoize the name -> id map
        # and rebuild it if regions were appended since it was built.
        ids = self.__dict__.get("_region_ids")
        if ids is None or len(ids) != len(self.regions):
            ids = {r.name: i for i, r in enumerate(self.regions)}
            self.__dict__["_region_ids"] = ids
        try:
            return ids[name]
        except KeyError:
            raise KeyError(f"no region named {name!r}") from None

    @property
    def total_accesses(self) -> int:
        return sum(e.accesses(p) for e in self.epochs for p in range(self.nprocs))

    @property
    def total_work(self) -> float:
        return float(sum(e.work.sum() for e in self.epochs))

    def epochs_labelled(self, label: str) -> list[Epoch]:
        """Epochs of a given phase (for the paper's Table 4 breakdown)."""
        return [e for e in self.epochs if e.label == label]

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on corruption."""
        for e in self.epochs:
            if e.nprocs != self.nprocs:
                raise ValueError("epoch/trace processor count mismatch")
            for plist in e.bursts:
                for b in plist:
                    if not 0 <= b.region < len(self.regions):
                        raise ValueError(f"burst references unknown region {b.region}")
                    spec = self.regions[b.region]
                    if len(b) and (
                        int(b.indices.min()) < 0
                        or int(b.indices.max()) >= spec.num_objects
                    ):
                        raise ValueError(
                            f"burst indices out of range for region {spec.name!r}"
                        )
