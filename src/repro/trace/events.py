"""Shared-memory access trace representation.

The five applications are *real* computations, but what the machine
simulators need from them is the stream of shared-memory accesses each
simulated processor performs, segmented by synchronization.  This module
defines that representation:

* a :class:`RegionSpec` describes one shared object array (name, object
  count, object size in bytes — the paper's Table 1 column);
* a :class:`Burst` is a run of object-granularity accesses (read or write)
  by one processor to one region, in traversal order;
* an :class:`Epoch` is everything between two barriers: per-processor burst
  lists plus lock-acquisition and work counters;
* a :class:`Trace` is the whole run: the region table plus the epoch list.

Traces are *object-granularity*: they record which object was touched, not
which byte.  The mapping to bytes/lines/pages lives in
:mod:`repro.trace.layout` so one trace can be replayed against machines with
different consistency-unit sizes (the paper's central variable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RegionSpec", "Burst", "RaggedBatch", "Epoch", "Trace"]


@dataclass(frozen=True)
class RegionSpec:
    """One shared object array.

    Parameters
    ----------
    name:
        Region name, unique within a trace (``"particles"``, ``"cells"``...).
    num_objects:
        Number of objects in the array.
    object_size:
        Bytes per object — e.g. 104 for a Barnes-Hut body, 680 for a
        Water-Spatial molecule (Table 1 of the paper).
    """

    name: str
    num_objects: int
    object_size: int

    def __post_init__(self) -> None:
        if self.num_objects < 0:
            raise ValueError("num_objects must be non-negative")
        if self.object_size <= 0:
            raise ValueError("object_size must be positive")

    @property
    def nbytes(self) -> int:
        return self.num_objects * self.object_size


@dataclass(frozen=True)
class Burst:
    """A run of accesses by one processor to one region.

    ``indices`` preserves traversal order and multiplicity; both matter to
    the cache/TLB simulators.  ``is_write`` applies to the whole burst
    (applications emit separate bursts for reads and writes).
    """

    region: int
    indices: np.ndarray
    is_write: bool

    def __post_init__(self) -> None:
        idx = self.indices
        # Callers on the hot path (TraceBuilder, the packed compatibility
        # view) hand in already-contiguous int64 arrays; converting again
        # here would copy every burst twice.  Only normalize when needed.
        if not (
            isinstance(idx, np.ndarray)
            and idx.dtype == np.int64
            and idx.flags["C_CONTIGUOUS"]
        ):
            idx = np.ascontiguousarray(idx, dtype=np.int64)
            object.__setattr__(self, "indices", idx)
        if idx.ndim != 1:
            raise ValueError("burst indices must be 1-D")

    def __len__(self) -> int:
        return int(self.indices.shape[0])


class RaggedBatch:
    """A staged group of bursts in CSR (ragged) form.

    ``lanes`` is a list of ``(region, is_write, indices, offsets)`` tuples,
    all with the same burst count ``k``: lane ``l``'s burst ``j`` is
    ``indices[offsets[j]:offsets[j + 1]]``.  The batch denotes the burst
    sequence a per-object emit loop would have produced — burst-major
    across lanes (burst ``j`` of every lane before burst ``j + 1`` of any),
    with zero-length bursts dropped, exactly like
    :meth:`repro.trace.builder.TraceBuilder.read` drops empty calls.

    One batch replaces up to ``k * len(lanes)`` staged tuples with a
    constant number of arrays; :meth:`expand` produces the equivalent
    packed burst columns vectorized, :meth:`iter_bursts` the equivalent
    :class:`Burst` sequence for the legacy list path.  The index arrays are
    staged without a copy, so callers must not mutate them before the
    epoch is sealed (the same aliasing contract as ``TraceBuilder.read``).
    """

    __slots__ = ("lanes", "nbursts", "total")

    def __init__(
        self,
        lanes: list[tuple[int, bool, np.ndarray, np.ndarray]],
        nbursts: int,
        total: int,
    ):
        self.lanes = lanes
        self.nbursts = nbursts
        self.total = total

    def expand(
        self, out: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized expansion to packed burst columns.

        Returns ``(burst_region, burst_write, burst_length, index)`` — the
        non-empty bursts in burst-major lane order and the interleaved flat
        index column (length ``total``).  With ``out`` (a length-``total``
        int64 buffer, typically a slice of the epoch's final index column)
        the flat column is written in place, so sealing needs no second
        concatenation pass over the expanded indices.
        """
        lanes = self.lanes
        k = self.nbursts
        if len(lanes) == 1:
            region, write, idx, offs = lanes[0]
            lens = np.diff(offs)
            nz = lens > 0
            if not nz.all():
                lens = lens[nz]
            breg = np.full(lens.shape[0], region, dtype=np.int64)
            bwri = np.full(lens.shape[0], write, dtype=np.bool_)
            # Empty bursts contribute nothing: the flat column is the lane's
            # index array as-is (no copy unless an output buffer is given).
            if out is None:
                return breg, bwri, lens, idx
            np.copyto(out, idx)
            return breg, bwri, lens, out

        m = len(lanes)
        lens = np.empty(m * k, dtype=np.int64)
        for l, (_, _, _, offs) in enumerate(lanes):
            np.subtract(offs[1:], offs[:-1], out=lens[l::m])
        out_off = np.empty(m * k + 1, dtype=np.int64)
        out_off[0] = 0
        np.cumsum(lens, out=out_off[1:])
        index = np.empty(self.total, dtype=np.int64) if out is None else out
        for l, (_, _, idx, offs) in enumerate(lanes):
            ln = idx.shape[0]
            if ln == 0:
                continue
            starts_out = out_off[l:-1:m]
            if ln == k:
                cl = lens[l::m]
                if cl[0] == 1 and (cl == 1).all():
                    # Unit-burst lane (one element per burst): pure scatter.
                    index[starts_out] = idx
                    continue
            # Element e of this lane lands at
            # starts_out[burst(e)] + (e - offs[burst(e)]).
            pos = np.repeat(starts_out - offs[:-1], lens[l::m])
            pos += np.arange(ln, dtype=np.int64)
            index[pos] = idx
        breg = np.tile(
            np.fromiter((r for r, _, _, _ in lanes), dtype=np.int64, count=m), k
        )
        bwri = np.tile(
            np.fromiter((w for _, w, _, _ in lanes), dtype=np.bool_, count=m), k
        )
        nz = lens > 0
        if not nz.all():
            breg, bwri, lens = breg[nz], bwri[nz], lens[nz]
        return breg, bwri, lens, index

    def iter_bursts(self):
        """Yield the equivalent non-empty :class:`Burst` sequence.

        Burst-major across lanes; the ``indices`` are views into the lane
        arrays (no copies).  Used by the legacy burst-list builder path.
        """
        for j in range(self.nbursts):
            for region, write, idx, offs in self.lanes:
                lo, hi = int(offs[j]), int(offs[j + 1])
                if hi > lo:
                    yield Burst(region, idx[lo:hi], write)


@dataclass
class Epoch:
    """All shared accesses between two consecutive barriers.

    Attributes
    ----------
    bursts:
        ``bursts[p]`` is the ordered burst list of processor ``p``.
    work:
        ``work[p]`` — abstract compute units (e.g. pair interactions)
        performed by processor ``p``; drives the timing model.
    lock_acquires:
        ``lock_acquires[p]`` — number of lock acquisitions by ``p``.
    label:
        Phase name for per-phase breakdowns (paper's Table 4).
    """

    nprocs: int
    label: str = ""
    bursts: list[list[Burst]] = field(default_factory=list)
    work: np.ndarray = field(default=None)  # type: ignore[assignment]
    lock_acquires: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ValueError("nprocs must be positive")
        if not self.bursts:
            self.bursts = [[] for _ in range(self.nprocs)]
        if self.work is None:
            self.work = np.zeros(self.nprocs, dtype=np.float64)
        if self.lock_acquires is None:
            self.lock_acquires = np.zeros(self.nprocs, dtype=np.int64)

    def accesses(self, proc: int) -> int:
        """Total object accesses by processor ``proc`` in this epoch."""
        return sum(len(b) for b in self.bursts[proc])

    def flat(self, proc: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten a processor's bursts to ``(region, index, is_write)`` arrays."""
        bl = self.bursts[proc]
        if not bl:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
            )
        regions = np.concatenate(
            [np.full(len(b), b.region, dtype=np.int64) for b in bl]
        )
        indices = np.concatenate([b.indices for b in bl])
        writes = np.concatenate([np.full(len(b), b.is_write, dtype=bool) for b in bl])
        return regions, indices, writes


@dataclass
class Trace:
    """A full run: region table + ordered epoch list.

    The epoch order is the global synchronization order (epochs are
    barrier-separated, so every processor's epoch ``e`` accesses
    happen-before every processor's epoch ``e+1`` accesses — the property
    the lazy-release-consistency models rely on).
    """

    nprocs: int
    regions: list[RegionSpec] = field(default_factory=list)
    epochs: list[Epoch] = field(default_factory=list)

    def region_id(self, name: str) -> int:
        # Called inside per-epoch loops (trace.stats, experiments); a linear
        # scan per call is O(regions) each time.  Memoize the name -> id map
        # and rebuild it if regions were appended since it was built.
        ids = self.__dict__.get("_region_ids")
        if ids is None or len(ids) != len(self.regions):
            ids = {r.name: i for i, r in enumerate(self.regions)}
            self.__dict__["_region_ids"] = ids
        try:
            return ids[name]
        except KeyError:
            raise KeyError(f"no region named {name!r}") from None

    @property
    def total_accesses(self) -> int:
        return sum(e.accesses(p) for e in self.epochs for p in range(self.nprocs))

    @property
    def total_work(self) -> float:
        return float(sum(e.work.sum() for e in self.epochs))

    def epochs_labelled(self, label: str) -> list[Epoch]:
        """Epochs of a given phase (for the paper's Table 4 breakdown)."""
        return [e for e in self.epochs if e.label == label]

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on corruption."""
        for e in self.epochs:
            if e.nprocs != self.nprocs:
                raise ValueError("epoch/trace processor count mismatch")
            for plist in e.bursts:
                for b in plist:
                    if not 0 <= b.region < len(self.regions):
                        raise ValueError(f"burst references unknown region {b.region}")
                    spec = self.regions[b.region]
                    if len(b) and (
                        int(b.indices.min()) < 0
                        or int(b.indices.max()) >= spec.num_objects
                    ):
                        raise ValueError(
                            f"burst indices out of range for region {spec.name!r}"
                        )
