"""Shared-memory access traces: representation, construction, statistics."""

from .builder import TraceBuilder
from .events import Burst, Epoch, RegionSpec, Trace
from .io import load_trace, save_trace
from .layout import Layout
from .stats import (
    AccessCounts,
    access_counts,
    footprint,
    mean_sharers,
    page_read_sets,
    page_sharers,
    page_write_sets,
    proc_unit_sets,
    update_map,
)

__all__ = [
    "RegionSpec",
    "Burst",
    "Epoch",
    "Trace",
    "TraceBuilder",
    "Layout",
    "save_trace",
    "load_trace",
    "page_sharers",
    "page_write_sets",
    "page_read_sets",
    "mean_sharers",
    "update_map",
    "footprint",
    "access_counts",
    "AccessCounts",
    "proc_unit_sets",
]
