"""Shared-memory access traces: representation, construction, statistics."""

from .builder import TraceBuilder, set_packed_default
from .events import Burst, Epoch, RegionSpec, Trace
from .io import TRACE_SUFFIX, load_trace, save_trace, save_trace_npz
from .layout import DecodedEpoch, DecodeMemo, Layout, decode_epoch, decode_memo
from .packed import PackedEpoch, PackedTrace, pack_epoch, pack_trace, unpack_trace
from .stats import (
    AccessCounts,
    access_counts,
    footprint,
    mean_sharers,
    page_read_sets,
    page_sharers,
    page_write_sets,
    proc_unit_sets,
    update_map,
)

__all__ = [
    "RegionSpec",
    "Burst",
    "Epoch",
    "Trace",
    "PackedEpoch",
    "PackedTrace",
    "pack_epoch",
    "pack_trace",
    "unpack_trace",
    "TraceBuilder",
    "set_packed_default",
    "Layout",
    "DecodedEpoch",
    "DecodeMemo",
    "decode_epoch",
    "decode_memo",
    "save_trace",
    "save_trace_npz",
    "load_trace",
    "TRACE_SUFFIX",
    "page_sharers",
    "page_write_sets",
    "page_read_sets",
    "mean_sharers",
    "update_map",
    "footprint",
    "access_counts",
    "AccessCounts",
    "proc_unit_sets",
]
