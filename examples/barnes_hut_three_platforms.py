#!/usr/bin/env python
"""The paper's headline experiment in miniature: Barnes-Hut, original vs
Hilbert-reordered, on all three simulated platforms.

Reproduces, at reduced scale, the qualitative results of Figures 7-9 and
Tables 2-3 for one application: reordering cuts page sharing, TreadMarks
messages, Origin L2/TLB misses — and the reordering routine's cost is
negligible next to the savings.

Run:  python examples/barnes_hut_three_platforms.py [n]
"""

import sys
import time

import numpy as np

from repro.apps import AppConfig, BarnesHut
from repro.experiments.report import render_table
from repro.machines import simulate_hardware, simulate_hlrc, simulate_treadmarks
from repro.machines.params import origin2000_scaled
from repro.trace import Layout, mean_sharers, page_sharers

n = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
nprocs = 16

rows = []
for version in ("original", "hilbert"):
    app = BarnesHut(AppConfig(n=n, nprocs=nprocs, iterations=2, seed=42))
    t0 = time.perf_counter()
    if version != "original":
        app.reorder(version)
    reorder_wall = time.perf_counter() - t0

    trace = app.run()
    layout = Layout.for_trace(trace, align=8192)
    sharers = mean_sharers(page_sharers(trace, layout, "bodies", 8192))

    hw = simulate_hardware(trace, origin2000_scaled(65536 / n, nprocs))
    tm = simulate_treadmarks(trace)
    hl = simulate_hlrc(trace)
    rows.append(
        [
            version,
            round(sharers, 2),
            hw.total_l2_misses,
            hw.total_tlb_misses,
            round(hw.time * 1e3, 2),
            tm.messages,
            round(tm.data_mbytes, 1),
            round(tm.time, 3),
            hl.messages,
            round(hl.time, 3),
        ]
    )
    print(f"{version}: app ran, reorder wall-clock {reorder_wall*1e3:.1f} ms")

print()
print(
    render_table(
        [
            "version",
            "sharers/page",
            "L2 miss",
            "TLB miss",
            "origin ms",
            "TM msgs",
            "TM MB",
            "TM s",
            "HLRC msgs",
            "HLRC s",
        ],
        rows,
        title=f"Barnes-Hut, n={n}, {nprocs} simulated processors",
    )
)

orig, hil = rows
print(
    f"\nreordering: {orig[1]/hil[1]:.1f}x fewer sharers/page, "
    f"{orig[5]/hil[5]:.1f}x fewer TreadMarks messages, "
    f"{orig[3]/hil[3]:.1f}x fewer TLB misses"
)
