#!/usr/bin/env python
"""Quickstart: reorder an irregular application's object array.

The paper's library boils down to one call: give it the object array (or
just the coordinates) and it hands back a permutation that co-locates
objects that are close in physical space.  Apply it to every per-object
array, remap any index-based structures, and the program is otherwise
unchanged — "less than 10 lines of code".

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import column_reorder, hilbert_reorder

rng = np.random.default_rng(7)

# --- An irregular app's state: particles in random memory order. ---------
n = 10_000
pos = rng.random((n, 3))  # coordinates
vel = rng.standard_normal((n, 3)) * 0.1  # a second per-particle array
# ...and an index-based structure: each particle's nearest neighbour.
d2 = None
nearest = np.empty(n, dtype=np.int64)
for s in range(0, n, 2000):  # chunked O(n^2/chunk) toy nearest-neighbour
    block = ((pos[s : s + 2000, None, :] - pos[None, :, :]) ** 2).sum(-1)
    block[np.arange(block.shape[0]), np.arange(s, s + block.shape[0])] = np.inf
    nearest[s : s + 2000] = np.argmin(block, axis=1)

# --- The <10 added lines: compute once, apply everywhere. -----------------
r = hilbert_reorder(pos)  # 1. permutation from a space-filling curve
pos2 = r.apply(pos)  # 2. move the objects
vel2 = r.apply(vel)  # 3. ...and every parallel array
nearest2 = r.remap_indices(nearest)  # 4. fix up index-based structures
nearest2 = r.apply(nearest2)  # (the array itself is per-object too)

# --- Verify the permutation did not change program semantics. -------------
assert np.allclose(pos2[nearest2], pos[nearest][r.perm])
print(f"reordered {n} particles with method={r.method!r}")

# --- Why bother: spatial neighbours are now memory neighbours. ------------
def mean_neighbor_rank_gap(order_rank):
    return float(np.abs(order_rank[nearest] - order_rank[np.arange(n)]).mean())

identity_rank = np.arange(n)
print(
    "mean |array-index distance| to nearest spatial neighbour:\n"
    f"  original order: {mean_neighbor_rank_gap(identity_rank):>10.1f}"
    f"   (random: anything goes)\n"
    f"  hilbert order:  {mean_neighbor_rank_gap(r.rank):>10.1f}"
    "   (neighbours now live nearby in memory)"
)

# Column ordering: the paper's pick for block-partitioned apps on DSMs.
rc = column_reorder(pos)
print(
    f"  column order:   {mean_neighbor_rank_gap(rc.rank):>10.1f}"
    "   (slabs: good for page-sized consistency units)"
)

# --- The byte-level interface mirrors the paper's C signature. -------------
from repro.core.library import hilbert_reorder_buffer

body_dtype = np.dtype([("type", "i2"), ("mass", "f4"), ("pos", "f8", 3)])
bodies = np.zeros(100, dtype=body_dtype)
bodies["pos"] = rng.random((100, 3))


def coord(records, i, dim):  # double (*coord)(...) from section 3.5
    return float(np.frombuffer(records[i].tobytes(), dtype=body_dtype)[0]["pos"][dim])


buf = bodies.view(np.uint8).copy()
hilbert_reorder_buffer(buf, body_dtype.itemsize, 100, 3, coord)
print("byte-level hilbert_reorder() on an opaque struct array: OK")
