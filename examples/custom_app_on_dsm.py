#!/usr/bin/env python
"""Study *your own* application's layout with the trace + machine substrate.

The repro package is not only the five paper benchmarks: TraceBuilder lets
any computation record its shared-memory accesses, and the machine models
turn that trace into page-sharing numbers, DSM traffic and Origin-style
miss counts.  This example writes a small irregular kernel from scratch — a
randomized-graph relaxation — and measures how data reordering would change
it, without owning an SGI Origin or a FreeBSD cluster.

Run:  python examples/custom_app_on_dsm.py
"""

import numpy as np

from repro.core import hilbert_reorder
from repro.experiments.report import render_table
from repro.machines import simulate_hlrc, simulate_treadmarks, simulate_hardware
from repro.machines.params import origin2000_scaled
from repro.trace import Layout, TraceBuilder, mean_sharers, page_sharers

rng = np.random.default_rng(3)
n, nprocs, iterations = 8192, 16, 3

# A graph whose edges connect spatially-close vertices (like a mesh), but
# whose vertex array order is random (like a fresh benchmark).
pos = rng.random((n, 2))
grid = (pos * 16).astype(int)
cell = grid[:, 0] * 16 + grid[:, 1]
order = np.argsort(cell)
starts = np.searchsorted(cell[order], np.arange(16 * 16 + 1))
src, dst = [], []
for c in range(16 * 16):
    members = order[starts[c] : starts[c + 1]]
    if members.shape[0] > 1:
        src.append(members[:-1])
        dst.append(members[1:])
edges = np.stack([np.concatenate(src), np.concatenate(dst)], axis=1)


def run_trace(vertex_edges: np.ndarray) -> "TraceBuilder":
    """Block-partitioned edge relaxation, one barrier per iteration."""
    tb = TraceBuilder(nprocs, label="relax")
    region = tb.add_region("vertices", n, 64)
    bounds = (np.arange(nprocs + 1) * vertex_edges.shape[0]) // nprocs
    for _ in range(iterations):
        for p in range(nprocs):
            mine = vertex_edges[bounds[p] : bounds[p + 1]]
            stream = mine.ravel()
            tb.read(p, region, stream)
            tb.write(p, region, stream)
            tb.work(p, mine.shape[0])
        tb.barrier("relax")
    return tb.finish()


rows = []
for version in ("original", "hilbert"):
    if version == "original":
        e = edges
    else:
        r = hilbert_reorder(pos)
        e = r.remap_indices(edges)
        e = e[np.argsort(e[:, 0], kind="stable")]
    trace = run_trace(e)
    layout = Layout.for_trace(trace, align=4096)
    tm = simulate_treadmarks(trace)
    hl = simulate_hlrc(trace)
    hw = simulate_hardware(trace, origin2000_scaled(16, nprocs))
    rows.append(
        [
            version,
            round(mean_sharers(page_sharers(trace, layout, "vertices", 4096)), 2),
            tm.messages,
            round(tm.data_mbytes, 1),
            hl.messages,
            hw.total_l2_misses,
        ]
    )

print(
    render_table(
        ["version", "sharers/page", "TM msgs", "TM MB", "HLRC msgs", "L2 misses"],
        rows,
        title="Custom edge-relaxation kernel under data reordering",
    )
)
orig, hil = rows
print(
    f"\nHilbert reordering would cut this kernel's TreadMarks messages by "
    f"{orig[2]/hil[2]:.1f}x before porting a single line to a real cluster."
)
