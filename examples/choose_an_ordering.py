#!/usr/bin/env python
"""The paper's guideline, measured: which ordering should *your* app use?

Section 3.4 and the conclusions give a decision rule:

* tree/grid-partitioned app (Category 1)  -> Hilbert, everywhere;
* block-partitioned app (Category 2) on a page-based software DSM
  -> column (slabs touch few big consistency units);
* block-partitioned app on hardware shared memory -> Hilbert (cubes touch
  few small consistency units).

This example demonstrates the Category 2 crossover on Moldyn by sweeping
the consistency-unit size, then prints the orderings of Figure 3.

Run:  python examples/choose_an_ordering.py
"""

from repro.apps import AppConfig, Moldyn
from repro.experiments.figures import fig3
from repro.experiments.report import render_path, render_table
from repro.machines import simulate_treadmarks
from repro.machines.params import cluster_scaled

nprocs = 16
traces = {}
for version in ("column", "hilbert"):
    app = Moldyn(AppConfig(n=4096, nprocs=nprocs, iterations=4, seed=42))
    app.reorder(version)
    traces[version] = app.run()

rows = []
for unit in (128, 512, 2048, 8192):
    params = cluster_scaled(nprocs=nprocs, page_size=unit)
    col = simulate_treadmarks(traces["column"], params)
    hil = simulate_treadmarks(traces["hilbert"], params)
    winner = "column" if col.messages < hil.messages else "hilbert"
    rows.append([unit, col.messages, hil.messages, winner])

print(
    render_table(
        ["unit bytes", "column msgs", "hilbert msgs", "winner"],
        rows,
        title="Moldyn (block-partitioned) message count vs consistency-unit size",
    )
)
print(
    "\n-> column ordering wins at page granularity, Hilbert at cache-line\n"
    "   granularity: exactly the paper's guideline for Category 2 apps.\n"
)

print("The four orderings on an 8x8 grid (paper Figure 3), visit order:\n")
for name, path in fig3(8).items():
    print(render_path(path, 8, title=name))
    print()
