#!/usr/bin/env python
"""The paper's guideline, measured: which ordering should *your* app use?

Section 3.4 and the conclusions give a decision rule:

* tree/grid-partitioned app (Category 1)  -> Hilbert, everywhere;
* block-partitioned app (Category 2) on a page-based software DSM
  -> column (slabs touch few big consistency units);
* block-partitioned app on hardware shared memory -> Hilbert (cubes touch
  few small consistency units).

Instead of trusting the rule, ask the auto-tuner: ``repro.experiments.tune``
runs every candidate ordering through the sweep engines and scores the
counters with each machine's cost model.  The library's ordering zoo is
bigger than the paper's (Gray and Peano curves, BFS and reverse
Cuthill-McKee over the interaction graph), and the tuner shows where the
newcomers beat the guideline — RCM wins on the explicit-graph apps over
the software DSMs.  Recommendations persist in a library, so asking twice
costs nothing (try running this script again).

The same loop is available from the command line::

    python -m repro tune unstructured --machine treadmarks

Run:  python examples/choose_an_ordering.py
"""

from repro.experiments.report import render_path, render_table
from repro.experiments.tune import RecommendationLibrary, TuneSpec, tune
from repro.experiments.figures import fig3

library = RecommendationLibrary("repro-tune")

rows = []
for app, machine in (
    ("moldyn", "origin"),
    ("moldyn", "treadmarks"),
    ("unstructured", "treadmarks"),
    ("water-spatial", "treadmarks"),
    ("barnes-hut", "origin"),
):
    spec = TuneSpec(app=app, machine=machine, n=2048, nprocs=8, iterations=2)
    result = tune(spec, library=library)
    ranked = sorted(result.scores, key=lambda s: s.score)
    rows.append([
        app, machine, result.best,
        " > ".join(s.version for s in ranked),
        result.source,
    ])

print(
    render_table(
        ["application", "machine", "best", "ranking (best first)", "source"],
        rows,
        title="Auto-tuned ordering per (application, machine)",
    )
)
print(
    "\n-> The paper's guideline survives where it applies (space-filling\n"
    "   curves on hardware, slabs/curves on DSMs), but the new zoo members\n"
    "   take wins the guideline predates — reverse Cuthill-McKee on the\n"
    "   explicit-graph mesh, Peano elsewhere — and the margins shift with\n"
    "   problem size: that is exactly why tuning beats a fixed rule.\n"
    "   Run the script again: every row now answers from the library.\n"
)

print("The four orderings on an 8x8 grid (paper Figure 3), visit order:\n")
for name, path in fig3(8).items():
    print(render_path(path, 8, title=name))
    print()
