#!/usr/bin/env python
"""Water-Spatial's initial ordering: the paper's subtlest data point.

The paper says two things about Water-Spatial that pull in different
directions (EXPERIMENTS.md, deviation D1):

* section 5.1: on one processor "the traversal on the 3-D grids degenerates
  to column ordering, which conforms well with the initial molecular
  ordering from initialization" — i.e. the setup loop's lattice order is
  already sequential-friendly, so reordering buys nothing there;
* section 5.3.1: on 16 processors "the false sharing is caused by the
  mismatch between the random ordering of molecules in the shared address
  space and the locality-aware 3-D partition".

This example runs both initial orders through both analyses, showing the
whole picture the paper could only gesture at.

Run:  python examples/water_initial_order.py
"""

import numpy as np

from repro.apps import AppConfig, WaterSpatial
from repro.experiments.report import render_table
from repro.machines import simulate_treadmarks
from repro.machines.cache import LRUCache, collapse_runs
from repro.trace import Layout

rows = []
for initial in ("lattice", "random"):
    for version in ("original", "hilbert"):
        app = WaterSpatial(
            AppConfig(
                n=2048, nprocs=16, iterations=2, seed=7,
                extra={"initial_order": initial},
            )
        )
        if version != "original":
            app.reorder(version)
        trace = app.run()

        # 16-processor DSM traffic.
        tm = simulate_treadmarks(trace)

        # Single-processor traversal locality (TLB proxy): replay proc-0-
        # style sweep — the update phase in cell order — through a small TLB.
        app1 = WaterSpatial(
            AppConfig(
                n=2048, nprocs=1, iterations=1, seed=7,
                extra={"initial_order": initial},
            )
        )
        if version != "original":
            app1.reorder(version)
        t1 = app1.run()
        layout = Layout.for_trace(t1, align=16384)
        tlb = LRUCache(8)
        for epoch in t1.epochs:
            for b in epoch.bursts[0]:
                tlb.access_stream(
                    collapse_runs(layout.units(b.region, b.indices, 16384))
                )
        rows.append(
            [initial, version, tm.messages, round(tm.data_mbytes, 1), tlb.misses]
        )

print(
    render_table(
        ["initial order", "version", "TM msgs (16p)", "TM MB", "1p TLB misses"],
        rows,
        title="Water-Spatial: initial order x reordering",
    )
)
by = {(r[0], r[1]): r for r in rows}
lat_gain = by[("lattice", "original")][2] / by[("lattice", "hilbert")][2]
rnd_gain = by[("random", "original")][2] / by[("random", "hilbert")][2]
print(
    f"\nmessage reduction from Hilbert reordering: lattice start {lat_gain:.2f}x, "
    f"random start {rnd_gain:.2f}x\n"
    "-> with a lattice (column-conforming) start there is little left to\n"
    "   fix; from a random start the reordering recovers the paper's gains.\n"
    "   The single-processor TLB column shows the flip side: the lattice\n"
    "   start is already traversal-friendly."
)
