"""Ablation: the single-processor mechanism in isolation.

Table 2's single-processor TLB column (e.g. 9.15x fewer TLB misses for
Barnes-Hut) comes from traversal order matching memory order; this bench
replays the one-processor trace through a standalone TLB.
"""

from repro.experiments.ablations import sequential_locality
from repro.experiments.report import render_table


def test_sequential_locality(benchmark, scale, emit):
    out = benchmark.pedantic(
        sequential_locality,
        kwargs=dict(
            n=scale.n["barnes-hut"] // 2,
            tlb_entries=max(int(64 / scale.hw_scale), 8),
            page_size=16384,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [version, d["tlb_misses"], d["accesses"],
         round(d["tlb_misses"] / max(d["accesses"], 1), 4)]
        for version, d in out.items()
    ]
    emit(
        "ablation_sequential_locality",
        render_table(
            ["version", "TLB misses", "page refs", "miss rate"],
            rows,
            title="Ablation: single-processor Barnes-Hut TLB behaviour",
        ),
    )
    assert out["hilbert"]["tlb_misses"] < 0.5 * out["original"]["tlb_misses"]
