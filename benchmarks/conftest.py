"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper.  The
rendered artifact is printed (visible with ``-s``) and also written to
``benchmarks/results/<name>.txt`` so a plain ``pytest benchmarks/
--benchmark-only`` leaves inspectable output behind.

Problem scale: ``Scale()`` defaults (n≈4096, see DESIGN.md §5).  Set
``REPRO_PAPER_SCALE=1`` in the environment to run the paper's full sizes
(slow under CPython).  The in-process runner cache is shared across bench
files, so e.g. Figure 7 and Table 2 reuse the same simulations.
"""

import os
import pathlib

import pytest

from repro.experiments.runner import Scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> Scale:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return Scale.paper()
    return Scale()


@pytest.fixture(scope="session")
def emit():
    """emit(name, text): print an artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
