"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper.  The
rendered artifact is printed (visible with ``-s``) and also written to
``benchmarks/results/<name>.txt`` so a plain ``pytest benchmarks/
--benchmark-only`` leaves inspectable output behind.

Problem scale: ``Scale()`` defaults (n≈4096, see DESIGN.md §5).  Set
``REPRO_PAPER_SCALE=1`` in the environment to run the paper's full sizes
(slow under CPython).  The in-process runner cache is shared across bench
files, so e.g. Figure 7 and Table 2 reuse the same simulations.
"""

import os
import pathlib

import pytest

from repro.experiments.runner import Scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _runtime():
    """Install the resilient runtime when asked to via the environment.

    ``REPRO_CACHE_DIR=<dir>`` persists traces so an interrupted benchmark
    run (especially ``REPRO_PAPER_SCALE=1``) resumes from completed cells;
    ``REPRO_JOBS=<n>`` fans trace generation out across workers.
    """
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    if not cache_dir and jobs <= 1:
        yield None
        return
    from repro.runtime import (
        ExecutorConfig,
        RuntimeContext,
        TraceCache,
        set_runtime,
    )

    ctx = RuntimeContext(
        cache=TraceCache(cache_dir) if cache_dir else None,
        executor=ExecutorConfig(jobs=max(1, jobs), task_timeout=None),
    )
    previous = set_runtime(ctx)
    yield ctx
    set_runtime(previous)


@pytest.fixture(scope="session")
def scale() -> Scale:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return Scale.paper()
    return Scale()


@pytest.fixture(scope="session")
def emit():
    """emit(name, text): print an artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
