"""Extension: speedup-vs-processor-count curves.

The paper reports 16-processor results; these curves show how the
reordered version's advantage grows with the processor count (false
sharing scales with sharers per page — Figure 2's mechanism applied to
end-to-end time).
"""

from repro.experiments.report import render_table
from repro.experiments.scaling import scaling_curve


def test_scaling_barnes_treadmarks(benchmark, scale, emit):
    points = benchmark.pedantic(
        scaling_curve,
        kwargs=dict(
            app="barnes-hut",
            platform="treadmarks",
            versions=("original", "hilbert"),
            procs=(1, 4, 16),
            scale=scale,
        ),
        rounds=1,
        iterations=1,
    )
    by = {(pt.nprocs, pt.version): pt for pt in points}
    rows = [
        [p, round(by[(p, "original")].speedup, 2), round(by[(p, "hilbert")].speedup, 2)]
        for p in (1, 4, 16)
    ]
    emit(
        "scaling_curve",
        render_table(
            ["procs", "original speedup", "hilbert speedup"],
            rows,
            title="Barnes-Hut on TreadMarks: speedup vs processor count",
        ),
    )
    # Reordering's advantage grows with the processor count.
    gain4 = by[(4, "hilbert")].speedup / by[(4, "original")].speedup
    gain16 = by[(16, "hilbert")].speedup / by[(16, "original")].speedup
    assert gain16 > gain4 * 0.95
    assert by[(16, "hilbert")].speedup > by[(16, "original")].speedup