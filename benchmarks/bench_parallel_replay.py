"""Acceptance benchmark for the parallel replay backend + compressed v3.

Two claims, measured on the Barnes-Hut n=8192, P=16 trace:

* **parallel replay** — ``simulate_hardware_parallel`` with 4 workers
  (plus the parallel DSM interval build) produces **byte-identical**
  counters to the serial engines, and on a machine with >= 4 usable
  cores cuts wall-clock by >= 2x (``SPEEDUP_FLOOR``).  Counter equality
  is asserted unconditionally; the speedup floor is asserted only when
  the host actually has the cores (``os.cpu_count() >= MIN_CPUS``) —
  replaying in 4 processes on 1 core timeslices, it cannot speed up, and
  asserting otherwise would make the bench fail for reasons the code
  cannot fix.  The measured ratio and core count are always recorded in
  ``BENCH_parallel_replay.json`` so the claim is auditable either way.

* **compressed v3** — the zlib chunked bundle is <= 1/10 the size of the
  uncompressed v2 bundle (``SIZE_RATIO_FLOOR``), and replaying from it
  yields identical counters.

Timings are min-of-``ROUNDS`` (wall-clock noise is strictly additive).
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.apps import AppConfig, BarnesHut
from repro.machines.dsm.intervals import build_intervals
from repro.machines.hardware import simulate_hardware
from repro.machines.params import cluster_scaled, origin2000_scaled
from repro.machines.replay import build_intervals_parallel, simulate_hardware_parallel
from repro.trace.io import load_trace, save_trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

APP_N = 8192
NPROCS = 16
ITERATIONS = 2
SEED = 5
JOBS = 4
ROUNDS = 3
SPEEDUP_FLOOR = 2.0
SIZE_RATIO_FLOOR = 10.0
MIN_CPUS = 4

RESULT_ARRAYS = (
    "l2_misses", "tlb_misses", "invalidations", "work", "lock_acquires",
    "cold_misses", "coherence_misses", "capacity_misses",
    "classification_overcount",
)


def _min_of(fn, rounds=ROUNDS):
    best, out = 1e30, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.mark.slow
def test_parallel_replay_speedup(tmp_path, emit):
    trace = BarnesHut(
        AppConfig(n=APP_N, nprocs=NPROCS, iterations=ITERATIONS, seed=SEED)
    ).run()
    v2 = tmp_path / "t.npt"
    v3 = tmp_path / "t3.npt"
    save_trace(trace, v2)
    save_trace(trace, v3, compression="zlib")
    del trace

    hw = origin2000_scaled(8, NPROCS)
    cl = cluster_scaled(nprocs=NPROCS)

    # Serial: hardware replay + DSM interval build on a fresh mmap load.
    def serial():
        loaded = load_trace(v2, mmap=True)
        res = simulate_hardware(loaded, hw)
        infos, _ = build_intervals(loaded, None, cl.page_size)
        return res, len(infos)

    t_serial, (res_serial, n_epochs) = _min_of(serial)

    # Parallel: same work fanned across JOBS worker processes by path.
    def parallel():
        res = simulate_hardware_parallel(v2, hw, jobs=JOBS)
        infos, _ = build_intervals_parallel(v2, cl.page_size, jobs=JOBS)
        return res, len(infos)

    t_parallel, (res_parallel, n_epochs_par) = _min_of(parallel)

    # Byte-identical counters — unconditional.
    for name in RESULT_ARRAYS:
        assert np.array_equal(
            getattr(res_serial, name), getattr(res_parallel, name)
        ), name
    assert res_serial.time == res_parallel.time
    assert res_serial.phase_times == res_parallel.phase_times
    assert n_epochs == n_epochs_par

    # Compressed v3: size floor + identical replay.
    v2_bytes, v3_bytes = v2.stat().st_size, v3.stat().st_size
    size_ratio = v2_bytes / v3_bytes
    res_v3 = simulate_hardware(load_trace(v3), hw)
    assert np.array_equal(res_serial.l2_misses, res_v3.l2_misses)
    assert res_serial.time == res_v3.time

    cpus = os.cpu_count() or 1
    speedup = t_serial / t_parallel if t_parallel else float("inf")
    floor_enforced = cpus >= MIN_CPUS

    lines = [
        f"Parallel replay — Barnes-Hut n={APP_N}, P={NPROCS}, "
        f"{ITERATIONS} iterations (seed {SEED}), {JOBS} workers",
        f"host cores: {cpus} (speedup floor "
        f"{'enforced' if floor_enforced else 'recorded only — too few cores'})",
        f"stage timings: min of {ROUNDS} rounds, fresh load each",
        "",
        f"serial   (replay + intervals): {t_serial:.3f}s",
        f"parallel (replay + intervals): {t_parallel:.3f}s",
        f"speedup: {speedup:.2f}x (floor {SPEEDUP_FLOOR:.0f}x at >= {MIN_CPUS} cores)",
        "counters: HardwareResult arrays, time, phase_times byte-identical",
        "",
        f"trace file: {v2_bytes:,} B (v2) vs {v3_bytes:,} B (v3 zlib) = "
        f"{size_ratio:.1f}x smaller (floor {SIZE_RATIO_FLOOR:.0f}x)",
        "v3 replay counters identical to v2",
    ]
    emit("bench_parallel_replay", "\n".join(lines))

    payload = {
        "bench": "parallel_replay",
        "app": "barnes_hut",
        "n": APP_N,
        "nprocs": NPROCS,
        "iterations": ITERATIONS,
        "seed": SEED,
        "jobs": JOBS,
        "rounds": ROUNDS,
        "host_cpus": cpus,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_enforced": floor_enforced,
        "serial_s": round(t_serial, 4),
        "parallel_s": round(t_parallel, 4),
        "speedup": round(speedup, 3),
        "counters_identical": True,
        "file_bytes": {"v2": v2_bytes, "v3_zlib": v3_bytes},
        "size_ratio": round(size_ratio, 2),
        "size_ratio_floor": SIZE_RATIO_FLOOR,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel_replay.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert size_ratio >= SIZE_RATIO_FLOOR, (
        f"v3 only {size_ratio:.1f}x smaller than v2 "
        f"({v2_bytes:,} -> {v3_bytes:,} B); floor is {SIZE_RATIO_FLOOR:.0f}x"
    )
    if floor_enforced:
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel replay only {speedup:.2f}x faster with {JOBS} workers "
            f"on {cpus} cores ({t_serial:.2f}s -> {t_parallel:.2f}s); "
            f"floor is {SPEEDUP_FLOOR:.0f}x"
        )
