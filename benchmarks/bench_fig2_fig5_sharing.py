"""Figures 2 and 5: processors sharing each particle-array page for
Barnes-Hut at 2-16 processors, before and after Hilbert reordering.

Paper headline: "On 16 processors, the average number of processors
sharing a page is reduced from 9.5 to 3."
"""

import os

import numpy as np

from repro.experiments.figures import fig2_fig5
from repro.experiments.report import render_series


def test_fig2_fig5(benchmark, emit):
    n = 32768 if os.environ.get("REPRO_PAPER_SCALE") else 8192
    out = benchmark.pedantic(
        fig2_fig5,
        kwargs=dict(n=n, procs=(2, 4, 8, 16), object_size=208, page_size=8192),
        rounds=1,
        iterations=1,
    )
    parts = []
    for version, figure in (("original", "Figure 2"), ("hilbert", "Figure 5")):
        series = {
            f"P={p}": counts.astype(float) for p, counts in out[version].items()
        }
        parts.append(
            render_series(
                series,
                title=f"{figure}: processors sharing each page ({version}, n={n})",
                xlabel="page",
            )
        )
        parts.append("")
    means = {
        v: {p: float(c.mean()) for p, c in out[v].items()} for v in out
    }
    parts.append(f"mean sharers/page at P=16: original={means['original'][16]:.2f} "
                 f"hilbert={means['hilbert'][16]:.2f} (paper: 9.5 -> 3)")
    emit("fig2_fig5", "\n".join(parts))

    assert means["original"][16] > 8.0
    assert means["hilbert"][16] < means["original"][16] / 3.0
    # More processors -> more sharing in the original version.
    assert means["original"][16] > means["original"][2]
