"""Figures 1 and 4: the 168-particle/4-page update map, before and after
Hilbert reordering."""

import numpy as np

from repro.experiments.figures import fig1_fig4
from repro.experiments.report import render_update_map


def test_fig1_fig4(benchmark, emit):
    out = benchmark.pedantic(fig1_fig4, kwargs=dict(n=168, nprocs=4), rounds=1, iterations=1)
    parts = []
    for version, figure in (("original", "Figure 1"), ("hilbert", "Figure 4")):
        page, owner = out[version]
        parts.append(
            render_update_map(
                page,
                owner,
                4,
                title=f"{figure}: pages updated by each processor ({version})",
            )
        )
        ppp = np.mean([np.unique(page[owner == p]).shape[0] for p in range(4)])
        parts.append(f"mean pages written per processor: {ppp:.2f}\n")
    emit("fig1_fig4", "\n".join(parts))

    pg_o, ow_o = out["original"]
    pg_h, ow_h = out["hilbert"]
    spread_o = np.mean([np.unique(pg_o[ow_o == p]).shape[0] for p in range(4)])
    spread_h = np.mean([np.unique(pg_h[ow_h == p]).shape[0] for p in range(4)])
    # Paper: originally every processor updates all 4 pages; after
    # reordering each mostly writes its own 1-2 pages (plus a shared
    # boundary page here and there).
    assert spread_o > 3.5
    assert spread_h <= spread_o - 1.0
