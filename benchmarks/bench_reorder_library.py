"""Micro-benchmarks of the reordering library itself.

The paper reports the reordering routine's cost directly (Tables 2-3:
0.03-0.97 s for 32-65 K objects in C).  These benches time the Python
implementation's three steps — key generation, ranking, data movement — at
comparable sizes, using pytest-benchmark's statistics for real.
"""

import numpy as np
import pytest

from repro.core import (
    Reordering,
    column_keys,
    hilbert_keys,
    morton_keys,
    rank_keys,
    row_keys,
)

N = 65536


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).random((N, 3))


@pytest.mark.parametrize(
    "gen", [hilbert_keys, morton_keys, column_keys, row_keys],
    ids=["hilbert", "morton", "column", "row"],
)
def test_key_generation(benchmark, points, gen):
    keys = benchmark(gen, points, 16)
    assert keys.shape == (N,)


def test_ranking(benchmark, points):
    keys = hilbert_keys(points, 16)
    perm, rank = benchmark(rank_keys, keys)
    assert perm.shape == (N,)


def test_apply_permutation_104_byte_objects(benchmark, points):
    """Moving the object array: 104-byte records like Barnes-Hut bodies."""
    objects = np.zeros((N, 13), dtype=np.float64)  # 104 bytes per row
    r = Reordering.from_perm(np.random.default_rng(1).permutation(N))
    out = benchmark(r.apply, objects)
    assert out.shape == objects.shape


def test_remap_interaction_list(benchmark, points):
    r = Reordering.from_perm(np.random.default_rng(2).permutation(N))
    idx = np.random.default_rng(3).integers(0, N, 10 * N)
    out = benchmark(r.remap_indices, idx)
    assert out.shape == idx.shape


def test_full_reorder_end_to_end(benchmark, points):
    from repro.core import hilbert_reorder

    r = benchmark(hilbert_reorder, points)
    assert r.n == N
