"""Table 2: execution time, reordering cost, L2 cache misses and TLB misses
on the simulated Origin 2000 — single-processor and 16-processor runs."""

from repro.experiments.report import render_table
from repro.experiments.tables import table2


def test_table2(benchmark, scale, emit):
    rows = benchmark.pedantic(table2, args=(scale,), rounds=1, iterations=1)
    emit(
        "table2",
        render_table(
            [
                "Application", "Version", "Reorder s",
                "1p time s", "1p L2", "1p TLB",
                "16p time s", "16p L2", "16p TLB",
            ],
            [
                [
                    r.app, r.version, round(r.reorder_time, 3),
                    round(r.time_1p, 3), r.l2_misses_1p, r.tlb_misses_1p,
                    round(r.time_16p, 4), r.l2_misses_16p, r.tlb_misses_16p,
                ]
                for r in rows
            ],
            title="Table 2: Origin 2000 counters (simulated)",
        ),
    )
    by = {(r.app, r.version): r for r in rows}

    # Barnes-Hut: big single-processor TLB reduction (paper: 9.15x).
    assert (
        by[("Barnes-Hut", "hilbert")].tlb_misses_1p
        < 0.5 * by[("Barnes-Hut", "original")].tlb_misses_1p
    )
    # 16-processor L2 reduction for Barnes-Hut and FMM (paper: ~2x).
    for app in ("Barnes-Hut", "FMM"):
        assert (
            by[(app, "hilbert")].l2_misses_16p
            < 0.8 * by[(app, "original")].l2_misses_16p
        ), app
    # Unstructured: Hilbert cuts L2 misses by a large factor (paper: 4.9x;
    # at our scale the effect shows on 16 processors — the one-processor
    # mesh fits entirely in the scaled L2, leaving only cold misses).
    assert (
        by[("Unstructured", "hilbert")].l2_misses_16p
        < 0.5 * by[("Unstructured", "original")].l2_misses_16p
    )
    assert (
        by[("Unstructured", "hilbert")].l2_misses_1p
        <= by[("Unstructured", "original")].l2_misses_1p
    )
    # Water-Spatial: no meaningful single-processor L2 gain.
    ws_o = by[("Water-Spatial", "original")]
    ws_h = by[("Water-Spatial", "hilbert")]
    assert abs(ws_h.l2_misses_1p - ws_o.l2_misses_1p) < 0.5 * ws_o.l2_misses_1p
    # Reordering cost is small relative to total run time.
    for r in rows:
        if r.version != "original":
            assert r.reorder_time < 0.5 * r.time_16p + 1.0
