"""Figure 6: boundary objects under Hilbert vs row/column ordering in
block-partitioned Moldyn — slabs put a processor's remote interaction-list
partners on fewer pages and fewer owner processors than cubes."""

from repro.experiments.figures import fig6
from repro.experiments.report import render_table


def test_fig6(benchmark, scale, emit):
    rows = benchmark.pedantic(
        fig6,
        kwargs=dict(n=scale.n["moldyn"], nprocs=scale.nprocs, seed=scale.seed),
        rounds=1,
        iterations=1,
    )
    emit(
        "fig6",
        render_table(
            ["ordering", "remote partners", "their pages", "their owners"],
            [
                [r.ordering, round(r.remote_partners, 1),
                 round(r.remote_partner_pages, 1), round(r.partner_procs, 2)]
                for r in rows
            ],
            title="Figure 6: per-processor boundary structure in Moldyn",
        ),
    )
    by = {r.ordering: r for r in rows}
    assert by["column"].partner_procs <= by["hilbert"].partner_procs
    assert by["column"].remote_partner_pages < by["original"].remote_partner_pages
    assert by["hilbert"].remote_partners < by["original"].remote_partners
