"""Acceptance benchmark for the incremental adaptive re-reordering engine.

Three claims, recorded in ``results/BENCH_adaptive.json``:

* **incremental migration** — at n=8192 with <= 10% boundary crossers,
  ``AdaptiveReorderer.update`` (recompute movers' keys + binary merge)
  beats ``full_resort`` (recompute all keys + stable argsort) by
  >= ``SPEEDUP_FLOOR``x, and the delta permutation is **byte-identical**
  to the oracle's.  Identity is asserted unconditionally at every mover
  fraction; the speedup floor is on best-of-``ROUNDS`` timings
  (wall-clock noise is strictly additive).

* **heavy drift** — Moldyn and Water-Spatial at the aggressive timestep,
  {never, every-1, every-3, adaptive} x {origin, treadmarks, hlrc}.
  Re-reordering pays for itself on TreadMarks (some policy has positive
  net), and the adaptive policy — which correctly detects that every
  iteration drifts past the threshold — recovers >= ``RECOVERY_FLOOR``
  of the every-iteration benefit.

* **moderate drift (headline)** — at timesteps where only a fraction of
  the objects cross detection cells each iteration, the adaptive policy
  fires on accumulated drift instead of on a schedule: it recovers
  >= ``RECOVERY_FLOOR`` of the every-iteration benefit while spending
  <= ``COST_FRACTION_CEIL`` of its reorder budget, and strictly beats
  every-1 on net time.  (Per-event migration cost stays near a full
  re-layout — inserting movers shifts the slots between insertion
  points — so the engine's win is firing less often, cheaply detected.)
"""

import dataclasses
import json
import pathlib

import numpy as np

from repro.core.adaptive import AdaptiveReorderer
from repro.core.keys import hilbert_keys
from repro.core.quantize import BoundingBox
from repro.experiments.adaptive import (
    AdaptiveSpec,
    adaptive_breakeven,
    breakeven_report,
)
from repro.experiments.report import render_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

ENGINE_N = 8192
ENGINE_BITS = 16
ROUNDS = 7
MOVER_FRACS = (0.01, 0.05, 0.10)
SPEEDUP_FLOOR = 5.0
RECOVERY_FLOOR = 0.8
COST_FRACTION_CEIL = 0.75

#: Moderate-drift headline configurations: timestep small enough that the
#: per-iteration crosser fraction sits below the threshold for a few
#: iterations, detection lattice coarse enough to ignore thermal jitter.
HEADLINE = {
    "moldyn": {"dt": 1e-4, "adapt_bits": 4, "adapt_threshold": 0.3},
    "water-spatial": {"dt": 2e-4, "adapt_bits": 4, "adapt_threshold": 0.5},
}


def _drift(pos: np.ndarray, frac: float, rng) -> np.ndarray:
    """Teleport a ``frac`` subset far enough to guarantee a cell change."""
    out = pos.copy()
    m = int(round(frac * pos.shape[0]))
    idx = rng.choice(pos.shape[0], size=m, replace=False)
    out[idx] = rng.uniform(0.0, 1.0, size=(m, pos.shape[1]))
    return out


def measure_incremental_vs_full():
    rng = np.random.default_rng(42)
    base = rng.uniform(0.0, 1.0, size=(ENGINE_N, 3))
    bbox = BoundingBox.of(base)
    order = np.argsort(
        hilbert_keys(base, bits=ENGINE_BITS, bbox=bbox), kind="stable"
    )
    pos = base[order]  # primed sorted -> update() takes the merge path
    rows = []
    for frac in MOVER_FRACS:
        drifted = _drift(pos, frac, rng)
        best_inc, best_full, identical, moved = 1e30, 1e30, True, 0
        for _ in range(ROUNDS):
            # update() mutates engine state: fresh pair per round.
            inc_eng = AdaptiveReorderer("hilbert", bbox, bits=ENGINE_BITS)
            full_eng = AdaptiveReorderer("hilbert", bbox, bits=ENGINE_BITS)
            inc_eng.prime(pos)
            full_eng.prime(pos)
            upd_inc = inc_eng.update(drifted)
            upd_full = full_eng.full_resort(drifted)
            assert not upd_inc.full and upd_full.full
            identical &= (
                upd_inc.reordering.perm.tobytes()
                == upd_full.reordering.perm.tobytes()
            )
            moved = upd_inc.moved
            best_inc = min(best_inc, upd_inc.seconds)
            best_full = min(best_full, upd_full.seconds)
        rows.append(
            {
                "mover_frac": frac,
                "moved": moved,
                "incremental_s": best_inc,
                "full_s": best_full,
                "speedup": best_full / best_inc,
                "identical": identical,
            }
        )
    return rows


def _spec(app: str, n: int, nprocs: int, **extra) -> AdaptiveSpec:
    return AdaptiveSpec(
        app=app,
        n=n,
        nprocs=nprocs,
        iterations=12,
        seed=1,
        every=1,
        hw_scale=max(65536 / n, 1.0),
        extra=extra,
    )


def _policy_grid(spec: AdaptiveSpec, platforms):
    """never / every-1 / every-3 / adaptive cells for one spec."""
    cells = []
    for cell in adaptive_breakeven([spec], platforms=platforms):
        if cell.policy == "every":
            cell.policy = "every-1"
        cells.append(cell)
    spec3 = dataclasses.replace(spec, every=3)
    for cell in adaptive_breakeven([spec3], platforms=platforms, policies=("every",)):
        cell.policy = "every-3"
        cells.append(cell)
    return cells


def _recovery(cells, app: str, platform: str) -> dict:
    by = {c.policy: c for c in cells if c.app == app and c.platform == platform}
    gold, adapt = by["every-1"], by["adaptive"]
    return {
        "app": app,
        "platform": platform,
        "benefit_every_1": gold.benefit,
        "benefit_adaptive": adapt.benefit,
        "net_every_1": gold.net,
        "net_adaptive": adapt.net,
        "recovery": adapt.benefit / gold.benefit if gold.benefit > 0 else 0.0,
        "cost_every_1": gold.reorder_cost,
        "cost_adaptive": adapt.reorder_cost,
        "cost_fraction": (
            adapt.reorder_cost / gold.reorder_cost
            if gold.reorder_cost > 0
            else float("inf")
        ),
        "events_adaptive": adapt.reorder_events,
    }


def test_adaptive_engine_and_breakeven(benchmark, scale, emit):
    n = max(scale.n["moldyn"] // 2, 512)

    def measure():
        heavy, headline = [], []
        for app in ("moldyn", "water-spatial"):
            heavy += _policy_grid(
                _spec(app, n, scale.nprocs),
                ("origin", "treadmarks", "hlrc"),
            )
            knobs = dict(HEADLINE[app])
            thr = knobs.pop("adapt_threshold")
            spec = dataclasses.replace(
                _spec(app, n, scale.nprocs, **knobs), threshold=thr
            )
            headline += _policy_grid(spec, ("treadmarks",))
        return {
            "engine": measure_incremental_vs_full(),
            "heavy": heavy,
            "headline": headline,
        }

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    engine_rows, heavy, headline = out["engine"], out["heavy"], out["headline"]
    heavy_recovery = [
        _recovery(heavy, app, "treadmarks")
        for app in ("moldyn", "water-spatial")
    ]
    headline_recovery = [
        _recovery(headline, app, "treadmarks")
        for app in ("moldyn", "water-spatial")
    ]

    engine_table = render_table(
        ["movers", "moved", "incremental s", "full s", "speedup", "identical"],
        [
            [f"{r['mover_frac']:.0%}", r["moved"],
             round(r["incremental_s"] * 1e3, 3),
             round(r["full_s"] * 1e3, 3),
             round(r["speedup"], 1), str(r["identical"])]
            for r in engine_rows
        ],
        title=f"Incremental migration vs full re-sort (hilbert, n={ENGINE_N})",
    )
    recovery_table = render_table(
        ["regime", "app", "ev-1 benefit", "adaptive benefit", "recovery",
         "cost fraction", "net ev-1", "net adaptive"],
        [
            [regime, r["app"], round(r["benefit_every_1"], 3),
             round(r["benefit_adaptive"], 3), round(r["recovery"], 2),
             round(r["cost_fraction"], 2), round(r["net_every_1"], 3),
             round(r["net_adaptive"], 3)]
            for regime, rows in (("heavy", heavy_recovery),
                                 ("moderate", headline_recovery))
            for r in rows
        ],
        title="Adaptive vs re-reordering every iteration (TreadMarks)",
    )
    emit(
        "ablation_drift_rereorder",
        "\n\n".join(
            [
                engine_table,
                "Heavy drift (dt=3e-3):\n\n" + breakeven_report(heavy),
                "Moderate drift (headline):\n\n" + breakeven_report(headline),
                recovery_table,
            ]
        ),
    )
    (RESULTS_DIR / "BENCH_adaptive.json").write_text(
        json.dumps(
            {
                "engine": {
                    "n": ENGINE_N,
                    "bits": ENGINE_BITS,
                    "rounds": ROUNDS,
                    "speedup_floor": SPEEDUP_FLOOR,
                    "rows": engine_rows,
                },
                "heavy": [c.as_dict() for c in heavy],
                "headline": [c.as_dict() for c in headline],
                "recovery": {
                    "heavy": heavy_recovery,
                    "headline": headline_recovery,
                },
                "headline_knobs": HEADLINE,
                "recovery_floor": RECOVERY_FLOOR,
                "cost_fraction_ceil": COST_FRACTION_CEIL,
            },
            indent=2,
            default=str,
        )
        + "\n"
    )

    # The permutation identity is non-negotiable at every drift level.
    assert all(r["identical"] for r in engine_rows)
    # At <= 10% movers the merge must beat the full re-sort by >= 5x.
    assert all(r["speedup"] >= SPEEDUP_FLOOR for r in engine_rows)
    for r in heavy_recovery:
        # Under heavy drift re-reordering pays for itself on TreadMarks
        # for some policy...
        nets = [
            c.net for c in heavy
            if c.app == r["app"] and c.platform == "treadmarks"
            and c.policy != "never"
        ]
        assert r["benefit_every_1"] > 0
        assert max(nets) > 0
        # ...and the adaptive policy correctly degenerates to every-1.
        assert r["recovery"] >= RECOVERY_FLOOR, r
    for r in headline_recovery:
        # The headline: under moderate drift the adaptive policy recovers
        # the every-iteration benefit at a fraction of the reorder spend,
        # and dominates every-1 once that spend is charged.
        assert r["recovery"] >= RECOVERY_FLOOR, r
        assert r["cost_fraction"] <= COST_FRACTION_CEIL, r
        assert r["net_adaptive"] > r["net_every_1"], r
