"""Ablation (extension): periodic re-reordering under drift.

The paper reorders once during initialization and notes the routine "can be
called by a single processor as often as necessary" (section 3.5).  As
molecules drift, the initial ordering decays; this bench measures a long
Moldyn run with an aggressive timestep, comparing one-shot reordering
against re-reordering every k iterations (cost charged in a dedicated
``reorder`` epoch).
"""

from repro.apps import AppConfig, Moldyn
from repro.experiments.report import render_table
from repro.machines import simulate_treadmarks


def run_with(rereorder_every: int, n: int, nprocs: int):
    app = Moldyn(
        AppConfig(
            n=n,
            nprocs=nprocs,
            iterations=12,
            seed=1,
            extra={"dt": 3e-3, "rereorder_every": rereorder_every},
        )
    )
    app.reorder("column")
    return simulate_treadmarks(app.run())


def test_drift_rereorder(benchmark, scale, emit):
    n = scale.n["moldyn"] // 2
    results = benchmark.pedantic(
        lambda: {k: run_with(k, n, scale.nprocs) for k in (0, 6, 3)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            "one-shot" if k == 0 else f"every {k}",
            round(r.time, 3),
            r.messages,
            round(r.data_mbytes, 1),
            round(r.phase_times.get("reorder", 0.0), 4),
        ]
        for k, r in sorted(results.items())
    ]
    emit(
        "ablation_drift_rereorder",
        render_table(
            ["re-reorder", "TM time s", "messages", "MB", "reorder-epoch s"],
            rows,
            title="Ablation: periodic re-reordering of drifting Moldyn (column)",
        ),
    )
    # Under heavy drift, refreshing the ordering pays for itself.
    assert results[3].messages < results[0].messages
    assert results[3].time < results[0].time
