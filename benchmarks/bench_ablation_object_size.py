"""Ablation: false sharing vs object size at a fixed 128-byte line.

Reproduces the paper's Water-Spatial rationale (section 5.1): once the
object is much larger than the consistency unit there is little false
sharing for reordering to remove.
"""

from repro.experiments.ablations import object_size_sweep
from repro.experiments.report import render_table


def test_object_size_sweep(benchmark, scale, emit):
    rows = benchmark.pedantic(
        object_size_sweep,
        kwargs=dict(
            n=scale.n["barnes-hut"] // 2,
            nprocs=scale.nprocs,
            object_sizes=(32, 72, 104, 128, 256, 680),
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_object_size",
        render_table(
            ["object bytes", "orig shared", "orig lines", "orig frac",
             "hilbert shared", "hilbert frac"],
            [
                [
                    r["object_size"],
                    r["original_shared_lines"], r["original_lines"],
                    round(r["original_shared_lines"] / r["original_lines"], 3),
                    r["hilbert_shared_lines"],
                    round(r["hilbert_shared_lines"] / r["hilbert_lines"], 3),
                ]
                for r in rows
            ],
            title="Ablation: falsely-shared 128-byte lines vs object size",
        ),
    )
    frac = {
        r["object_size"]: r["original_shared_lines"] / r["original_lines"]
        for r in rows
    }
    # Monotone-ish collapse: 680-byte objects share far fewer lines than
    # 32-byte objects, regardless of ordering.
    assert frac[680] < 0.5 * frac[32]
    small = rows[0]
    assert small["hilbert_shared_lines"] < small["original_shared_lines"]
