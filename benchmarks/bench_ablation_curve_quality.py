"""Ablation: locality quality of the four orderings over Moldyn's
neighbour structure — why the paper implements Hilbert rather than stopping
at Morton, and when the slab orderings pay off."""

from repro.experiments.ablations import curve_quality
from repro.experiments.report import render_table


def test_curve_quality(benchmark, scale, emit):
    rows = benchmark.pedantic(
        curve_quality,
        kwargs=dict(n=scale.n["moldyn"] // 2),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_curve_quality",
        render_table(
            ["ordering", "mean |rank gap| to partners", "pages holding partners"],
            [
                [r.ordering, round(r.mean_neighbor_gap, 1), round(r.page_spread, 2)]
                for r in rows
            ],
            title="Ablation: ordering locality over the interaction list",
        ),
    )
    by = {r.ordering: r for r in rows}
    assert by["hilbert"].page_spread <= by["morton"].page_spread
    assert by["hilbert"].page_spread < by["column"].page_spread
