"""Figure 3: the four data reordering methods on a 2-D grid."""

import numpy as np

from repro.experiments.figures import fig3
from repro.experiments.report import render_path


def test_fig3(benchmark, emit):
    out = benchmark.pedantic(fig3, args=(8,), rounds=1, iterations=1)
    parts = []
    for name in ("morton", "hilbert", "column", "row"):
        parts.append(render_path(out[name], 8, title=f"Figure 3 ({name}):"))
        parts.append("")
    emit("fig3", "\n".join(parts))

    # Hilbert: unit steps; Morton: quadrant-contiguous; column/row: scans.
    steps = np.abs(np.diff(out["hilbert"], axis=0)).sum(axis=1)
    assert np.all(steps == 1)
    col = out["column"]
    assert np.all(col[:8, 0] == col[0, 0])
