"""Acceptance benchmark for ragged (CSR) trace generation.

``test_trace_generation_speedup`` times trace *generation* — the
application-side staging of read/write bursts into the builder — on
Barnes-Hut (n=8192, P=16) and Moldyn (n=8192, P=16) under the two emit
modes:

* **loop** — the original per-object emit loops: one ``tb.read`` /
  ``tb.write`` call per body or molecule, tens of thousands of tiny numpy
  arrays staged per force epoch;
* **ragged** — the batched kernels: each processor's whole epoch staged as
  one ``emit_ragged`` call over CSR columns (O(P) builder calls per epoch).

Every app instruments itself: ``emit_seconds`` is the wall time spent in
its emission blocks (staging plus the epoch seal at each barrier) and
``seal_seconds`` the portion inside ``PackedEpoch.seal``.  The acceptance
floor applies to the **staging** time (``emit_seconds - seal_seconds``) —
the interpreter-bound hot path the ragged API exists to kill.  The seal is
the same memory-bound column-packing work in both modes (the ragged path
hands it CSR batches, the loop path per-burst tuples; both expand into
identical columns), so including it would only measure how much shared
packing happens to surround the staging.  Inclusive times are reported
alongside for transparency.

The two modes must produce **byte-identical** ``.npt`` bundles — the
speedup is only meaningful if the traces are indistinguishable — and that
is asserted here for both apps (the small-n equivalence for all five apps
lives in ``tests/trace/test_ragged_builder.py``).

Numbers land in ``benchmarks/results/bench_trace_generation.txt`` and
``benchmarks/results/BENCH_trace_gen.json``.
"""

import io
import json
import pathlib
import time

import pytest

from repro.apps import AppConfig, BarnesHut, Moldyn
from repro.trace import builder as builder_mod
from repro.trace.io import save_trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

NPROCS = 16
SEED = 5
ROUNDS = 3
FLOOR = 3.0
TARGET = 5.0

APPS = (
    ("barnes_hut", BarnesHut, dict(n=8192, iterations=2)),
    ("moldyn", Moldyn, dict(n=8192, iterations=3)),
)


def _measure(app_cls, cfg_kw, mode):
    """Min-of-ROUNDS staging/seal seconds plus one saved bundle.

    A fresh app instance per round: ``run`` mutates the physics state, and
    identical seeds must yield identical traces for the byte comparison.
    """
    best = {"emit": 1e30, "staging": 1e30, "seal": 1e30}
    bundle = None
    for _ in range(ROUNDS):
        app = app_cls(
            AppConfig(nprocs=NPROCS, seed=SEED, extra={"emit": mode}, **cfg_kw)
        )
        t0 = time.perf_counter()
        trace = app.run()
        wall = time.perf_counter() - t0
        best["emit"] = min(best["emit"], app.emit_seconds)
        best["staging"] = min(best["staging"], app.emit_seconds - app.seal_seconds)
        best["seal"] = min(best["seal"], app.seal_seconds)
        best["wall"] = min(best.get("wall", 1e30), wall)
        if bundle is None:
            buf = io.BytesIO()
            save_trace(trace, buf)
            bundle = buf.getvalue()
            best["accesses"] = trace.total_accesses
    return best, bundle


@pytest.mark.slow
def test_trace_generation_speedup(emit):
    """Acceptance: ragged staging >= 3x faster than per-object loops on BH."""
    prev = builder_mod.set_packed_default(True)
    try:
        results = {}
        for name, app_cls, cfg_kw in APPS:
            loop, loop_bytes = _measure(app_cls, cfg_kw, "loop")
            ragged, ragged_bytes = _measure(app_cls, cfg_kw, "ragged")
            assert loop_bytes == ragged_bytes, (
                f"{name}: ragged .npt bundle differs from the per-burst loop's"
            )
            results[name] = {"loop": loop, "ragged": ragged, "cfg": cfg_kw}
    finally:
        builder_mod.set_packed_default(prev)

    rows = [
        f"{'app':<12} {'mode':<7} {'staging s':>10} {'+seal s':>8} "
        f"{'Macc/s':>8} {'speedup':>8}"
    ]
    payload_apps = {}
    for name, r in results.items():
        staging_speedup = r["loop"]["staging"] / r["ragged"]["staging"]
        inclusive_speedup = r["loop"]["emit"] / r["ragged"]["emit"]
        for mode in ("loop", "ragged"):
            t = r[mode]
            thr = t["accesses"] / t["staging"] / 1e6
            sp = f"{staging_speedup:>7.1f}x" if mode == "ragged" else f"{'':>8}"
            rows.append(
                f"{name:<12} {mode:<7} {t['staging']:>10.4f} {t['emit']:>8.3f} "
                f"{thr:>8.1f} {sp}"
            )
        payload_apps[name] = {
            **r["cfg"],
            "accesses": r["loop"]["accesses"],
            "loop": {k: round(v, 5) for k, v in r["loop"].items()},
            "ragged": {k: round(v, 5) for k, v in r["ragged"].items()},
            "staging_speedup": round(staging_speedup, 2),
            "inclusive_speedup": round(inclusive_speedup, 2),
            "bundle_identical": True,
        }

    bh = results["barnes_hut"]
    bh_speedup = bh["loop"]["staging"] / bh["ragged"]["staging"]
    md = results["moldyn"]
    lines = [
        f"Trace generation — loop vs ragged emit, P={NPROCS}, seed {SEED}, "
        f"min of {ROUNDS} rounds",
        "staging = emit_seconds - seal_seconds (builder-call hot path); "
        "+seal adds the",
        "column-packing seal shared by both modes; Macc/s = trace accesses "
        "per staging second",
        "",
        *rows,
        "",
        f"Barnes-Hut staging speedup: {bh_speedup:.1f}x "
        f"(target {TARGET:.0f}x, acceptance floor {FLOOR:.0f}x)",
        f"inclusive (staging+seal) speedups: "
        f"BH {bh['loop']['emit'] / bh['ragged']['emit']:.2f}x, "
        f"Moldyn {md['loop']['emit'] / md['ragged']['emit']:.2f}x",
        "ragged and loop modes produced byte-identical .npt bundles",
    ]
    emit("bench_trace_generation", "\n".join(lines))

    payload = {
        "bench": "trace_generation",
        "nprocs": NPROCS,
        "seed": SEED,
        "rounds": ROUNDS,
        "floor": FLOOR,
        "target": TARGET,
        "metric": "staging seconds (emit_seconds - seal_seconds), min of rounds",
        "apps": payload_apps,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_trace_gen.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert bh_speedup >= FLOOR, (
        f"ragged staging only {bh_speedup:.2f}x faster than the per-object "
        f"loop on Barnes-Hut ({bh['loop']['staging']:.3f}s -> "
        f"{bh['ragged']['staging']:.3f}s); floor is {FLOOR:.0f}x"
    )
