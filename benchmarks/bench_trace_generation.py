"""Acceptance benchmarks for trace generation: emit staging and numerics.

Two tests, two halves of the generate stage:

* ``test_trace_generation_speedup`` — emission.  Times the
  application-side staging of read/write bursts into the builder under
  the two emit modes (below).
* ``test_generate_engine_speedup`` — physics.  Times the *end-to-end*
  generate stage (``run()``: numerics + staging + seal) under the two
  numerics engines: ``loop`` (the per-object / per-cell reference
  formulations) versus ``batch`` (the vectorized kernels in
  :mod:`repro.apps.numerics`), on Barnes-Hut and FMM at n=8192, P=16.
  The engines must produce byte-identical ``.npt`` bundles — asserted
  unconditionally — and the batch engine must clear a >= 3x end-to-end
  floor on both apps.  Each app runs at its cost-optimal tree depth for
  the batch engine (Barnes-Hut ``leaf_capacity=2``, FMM ``levels=7``:
  measured fastest absolute batch configs at this n, because a deeper
  tree trades leaf-pair flops for cell work the batch engine does well);
  the per-stage ``physics_stages`` breakdown and the physics-vs-emit
  split are recorded in the JSON payload.

``test_trace_generation_speedup`` times trace *generation* — the
application-side staging of read/write bursts into the builder — on
Barnes-Hut (n=8192, P=16) and Moldyn (n=8192, P=16) under the two emit
modes:

* **loop** — the original per-object emit loops: one ``tb.read`` /
  ``tb.write`` call per body or molecule, tens of thousands of tiny numpy
  arrays staged per force epoch;
* **ragged** — the batched kernels: each processor's whole epoch staged as
  one ``emit_ragged`` call over CSR columns (O(P) builder calls per epoch).

Every app instruments itself: ``emit_seconds`` is the wall time spent in
its emission blocks (staging plus the epoch seal at each barrier) and
``seal_seconds`` the portion inside ``PackedEpoch.seal``.  The acceptance
floor applies to the **staging** time (``emit_seconds - seal_seconds``) —
the interpreter-bound hot path the ragged API exists to kill.  The seal is
the same memory-bound column-packing work in both modes (the ragged path
hands it CSR batches, the loop path per-burst tuples; both expand into
identical columns), so including it would only measure how much shared
packing happens to surround the staging.  Inclusive times are reported
alongside for transparency.

The two modes must produce **byte-identical** ``.npt`` bundles — the
speedup is only meaningful if the traces are indistinguishable — and that
is asserted here for both apps (the small-n equivalence for all five apps
lives in ``tests/trace/test_ragged_builder.py``).

Numbers land in ``benchmarks/results/bench_trace_generation.txt`` and
``benchmarks/results/BENCH_trace_gen.json``.
"""

import io
import json
import pathlib
import time

import pytest

from repro.apps import AppConfig, BarnesHut, FMM, Moldyn
from repro.trace import builder as builder_mod
from repro.trace.io import save_trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

NPROCS = 16
SEED = 5
ROUNDS = 3
FLOOR = 3.0
TARGET = 5.0

APPS = (
    ("barnes_hut", BarnesHut, dict(n=8192, iterations=2)),
    ("moldyn", Moldyn, dict(n=8192, iterations=3)),
)

# Engine comparison: end-to-end generate, loop numerics + loop emit versus
# batch numerics + ragged emit.  Tree-depth knobs pin each app to the
# fastest measured batch configuration at this scale (see module
# docstring); the loop engine runs the identical configuration.
ENGINE_FLOOR = 3.0
ENGINE_ROUNDS = 2
ENGINE_APPS = (
    ("barnes_hut", BarnesHut, dict(n=8192, iterations=2), {"leaf_capacity": 2}),
    ("fmm", FMM, dict(n=8192, iterations=2), {"levels": 7}),
)


def _update_json(name: str, key: str, payload: dict) -> None:
    """Merge one test's payload into a shared results JSON under ``key``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    doc = json.loads(path.read_text()) if path.exists() else {}
    doc[key] = payload
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _measure(app_cls, cfg_kw, mode):
    """Min-of-ROUNDS staging/seal seconds plus one saved bundle.

    A fresh app instance per round: ``run`` mutates the physics state, and
    identical seeds must yield identical traces for the byte comparison.
    """
    best = {"emit": 1e30, "staging": 1e30, "seal": 1e30}
    bundle = None
    for _ in range(ROUNDS):
        app = app_cls(
            AppConfig(nprocs=NPROCS, seed=SEED, extra={"emit": mode}, **cfg_kw)
        )
        t0 = time.perf_counter()
        trace = app.run()
        wall = time.perf_counter() - t0
        best["emit"] = min(best["emit"], app.emit_seconds)
        best["staging"] = min(best["staging"], app.emit_seconds - app.seal_seconds)
        best["seal"] = min(best["seal"], app.seal_seconds)
        best["wall"] = min(best.get("wall", 1e30), wall)
        if bundle is None:
            buf = io.BytesIO()
            save_trace(trace, buf)
            bundle = buf.getvalue()
            best["accesses"] = trace.total_accesses
    return best, bundle


@pytest.mark.slow
def test_trace_generation_speedup(emit):
    """Acceptance: ragged staging >= 3x faster than per-object loops on BH."""
    prev = builder_mod.set_packed_default(True)
    try:
        results = {}
        for name, app_cls, cfg_kw in APPS:
            loop, loop_bytes = _measure(app_cls, cfg_kw, "loop")
            ragged, ragged_bytes = _measure(app_cls, cfg_kw, "ragged")
            assert loop_bytes == ragged_bytes, (
                f"{name}: ragged .npt bundle differs from the per-burst loop's"
            )
            results[name] = {"loop": loop, "ragged": ragged, "cfg": cfg_kw}
    finally:
        builder_mod.set_packed_default(prev)

    rows = [
        f"{'app':<12} {'mode':<7} {'staging s':>10} {'+seal s':>8} "
        f"{'Macc/s':>8} {'speedup':>8}"
    ]
    payload_apps = {}
    for name, r in results.items():
        staging_speedup = r["loop"]["staging"] / r["ragged"]["staging"]
        inclusive_speedup = r["loop"]["emit"] / r["ragged"]["emit"]
        for mode in ("loop", "ragged"):
            t = r[mode]
            thr = t["accesses"] / t["staging"] / 1e6
            sp = f"{staging_speedup:>7.1f}x" if mode == "ragged" else f"{'':>8}"
            rows.append(
                f"{name:<12} {mode:<7} {t['staging']:>10.4f} {t['emit']:>8.3f} "
                f"{thr:>8.1f} {sp}"
            )
        payload_apps[name] = {
            **r["cfg"],
            "accesses": r["loop"]["accesses"],
            "loop": {k: round(v, 5) for k, v in r["loop"].items()},
            "ragged": {k: round(v, 5) for k, v in r["ragged"].items()},
            "staging_speedup": round(staging_speedup, 2),
            "inclusive_speedup": round(inclusive_speedup, 2),
            "bundle_identical": True,
        }

    bh = results["barnes_hut"]
    bh_speedup = bh["loop"]["staging"] / bh["ragged"]["staging"]
    md = results["moldyn"]
    lines = [
        f"Trace generation — loop vs ragged emit, P={NPROCS}, seed {SEED}, "
        f"min of {ROUNDS} rounds",
        "staging = emit_seconds - seal_seconds (builder-call hot path); "
        "+seal adds the",
        "column-packing seal shared by both modes; Macc/s = trace accesses "
        "per staging second",
        "",
        *rows,
        "",
        f"Barnes-Hut staging speedup: {bh_speedup:.1f}x "
        f"(target {TARGET:.0f}x, acceptance floor {FLOOR:.0f}x)",
        f"inclusive (staging+seal) speedups: "
        f"BH {bh['loop']['emit'] / bh['ragged']['emit']:.2f}x, "
        f"Moldyn {md['loop']['emit'] / md['ragged']['emit']:.2f}x",
        "ragged and loop modes produced byte-identical .npt bundles",
    ]
    emit("bench_trace_generation", "\n".join(lines))

    payload = {
        "nprocs": NPROCS,
        "seed": SEED,
        "rounds": ROUNDS,
        "floor": FLOOR,
        "target": TARGET,
        "metric": "staging seconds (emit_seconds - seal_seconds), min of rounds",
        "apps": payload_apps,
    }
    _update_json("BENCH_trace_gen.json", "emit_modes", payload)

    assert bh_speedup >= FLOOR, (
        f"ragged staging only {bh_speedup:.2f}x faster than the per-object "
        f"loop on Barnes-Hut ({bh['loop']['staging']:.3f}s -> "
        f"{bh['ragged']['staging']:.3f}s); floor is {FLOOR:.0f}x"
    )


def _measure_generate(app_cls, cfg_kw, extra, engine, emit_mode):
    """Min-of-ENGINE_ROUNDS end-to-end generate wall, with the stage split.

    A fresh app per round (``run`` mutates physics state); the bundle from
    the first round backs the byte-identity assertion.
    """
    best = None
    bundle = None
    for _ in range(ENGINE_ROUNDS):
        app = app_cls(
            AppConfig(
                nprocs=NPROCS,
                seed=SEED,
                extra={"engine": engine, "emit": emit_mode, **extra},
                **cfg_kw,
            )
        )
        t0 = time.perf_counter()
        trace = app.run()
        wall = time.perf_counter() - t0
        if bundle is None:
            buf = io.BytesIO()
            save_trace(trace, buf)
            bundle = buf.getvalue()
        if best is None or wall < best["wall"]:
            best = {
                "wall": wall,
                "physics": app.physics_seconds,
                "emit": app.emit_seconds,
                "seal": app.seal_seconds,
                "stages": {k: round(v, 5) for k, v in app.physics_stages.items()},
                "accesses": trace.total_accesses,
            }
    return best, bundle


@pytest.mark.slow
def test_generate_engine_speedup(emit):
    """Acceptance: batch numerics >= 3x faster end-to-end on BH and FMM."""
    prev = builder_mod.set_packed_default(True)
    try:
        results = {}
        for name, app_cls, cfg_kw, extra in ENGINE_APPS:
            loop, loop_bytes = _measure_generate(app_cls, cfg_kw, extra, "loop", "loop")
            batch, batch_bytes = _measure_generate(
                app_cls, cfg_kw, extra, "batch", "ragged"
            )
            assert loop_bytes == batch_bytes, (
                f"{name}: batch-engine .npt bundle differs from the loop engine's"
            )
            results[name] = {
                "loop": loop,
                "batch": batch,
                "cfg": {**cfg_kw, **extra},
            }
    finally:
        builder_mod.set_packed_default(prev)

    rows = [
        f"{'app':<12} {'engine':<7} {'wall s':>8} {'physics':>8} {'emit':>6} "
        f"{'seal':>6} {'speedup':>8}"
    ]
    payload_apps = {}
    speedups = {}
    for name, r in results.items():
        speedup = r["loop"]["wall"] / r["batch"]["wall"]
        speedups[name] = speedup
        for engine in ("loop", "batch"):
            t = r[engine]
            sp = f"{speedup:>7.1f}x" if engine == "batch" else f"{'':>8}"
            rows.append(
                f"{name:<12} {engine:<7} {t['wall']:>8.2f} {t['physics']:>8.2f} "
                f"{t['emit']:>6.2f} {t['seal']:>6.2f} {sp}"
            )
        payload_apps[name] = {
            **r["cfg"],
            "accesses": r["loop"]["accesses"],
            "loop": {
                k: (round(v, 5) if isinstance(v, float) else v)
                for k, v in r["loop"].items()
            },
            "batch": {
                k: (round(v, 5) if isinstance(v, float) else v)
                for k, v in r["batch"].items()
            },
            "generate_speedup": round(speedup, 2),
            "bundle_identical": True,
        }

    lines = [
        f"Generate stage — loop vs batch numerics engine, P={NPROCS}, "
        f"seed {SEED}, min of {ENGINE_ROUNDS} rounds",
        "wall = full run() (physics + emit staging + seal); loop engine uses "
        "loop emit,",
        "batch engine uses ragged emit — each side's native formulation, "
        "byte-identical bundles",
        "",
        *rows,
        "",
        *(
            f"{name} end-to-end generate speedup: {sp:.1f}x "
            f"(acceptance floor {ENGINE_FLOOR:.0f}x)"
            for name, sp in speedups.items()
        ),
        "loop and batch engines produced byte-identical .npt bundles",
    ]
    emit("bench_generate_engines", "\n".join(lines))

    payload = {
        "nprocs": NPROCS,
        "seed": SEED,
        "rounds": ENGINE_ROUNDS,
        "floor": ENGINE_FLOOR,
        "metric": "end-to-end run() wall seconds, min of rounds",
        "apps": payload_apps,
    }
    _update_json("BENCH_trace_gen.json", "engines", payload)

    for name, sp in speedups.items():
        assert sp >= ENGINE_FLOOR, (
            f"batch engine only {sp:.2f}x faster end-to-end on {name} "
            f"({results[name]['loop']['wall']:.2f}s -> "
            f"{results[name]['batch']['wall']:.2f}s); floor is "
            f"{ENGINE_FLOOR:.0f}x"
        )
