"""Figures 8 and 9: speedups of original vs reordered versions on the
TreadMarks and HLRC protocol models, 16 processors.

Paper shapes asserted: every application improves on both DSMs (30-366% on
TreadMarks, 14-269% on HLRC); Moldyn benefits least and FMM most; column
beats Hilbert for the Category 2 apps on page-based DSMs.
"""

from repro.experiments.figures import fig8_fig9
from repro.experiments.report import hbar, render_table
from repro.experiments.runner import versions_for


def best(versions: dict, category2: bool) -> str:
    return "column" if category2 else "hilbert"


def test_fig8_fig9(benchmark, scale, emit):
    out = benchmark.pedantic(fig8_fig9, args=(scale,), rounds=1, iterations=1)
    parts = []
    for platform, figure in (("treadmarks", "Figure 8"), ("hlrc", "Figure 9")):
        vmax = max(s for v in out[platform].values() for s in v.values())
        rows = []
        for app, versions in out[platform].items():
            for version, speedup in versions.items():
                rows.append([app, version, round(speedup, 2), hbar(speedup, vmax)])
        parts.append(
            render_table(
                ["application", "version", "speedup", ""],
                rows,
                title=f"{figure}: speedups on {platform} ({scale.nprocs} procs)",
            )
        )
        parts.append("")
    emit("fig8_fig9", "\n".join(parts))

    from repro.apps import APP_REGISTRY

    gains = {}
    for platform in ("treadmarks", "hlrc"):
        for app, versions in out[platform].items():
            cat2 = APP_REGISTRY[app].category == 2
            b = versions[best(versions, cat2)]
            assert b > versions["original"], (platform, app)
            gains[(platform, app)] = b / versions["original"]
    # Column beats Hilbert on DSMs for Moldyn (paper: ~3x; for
    # Unstructured the paper's 1.18x gap is inside our mesh-shape noise —
    # see EXPERIMENTS.md, deviation D3).
    assert out["treadmarks"]["moldyn"]["column"] > out["treadmarks"]["moldyn"]["hilbert"]
    assert out["hlrc"]["moldyn"]["column"] > out["hlrc"]["moldyn"]["hilbert"]
