"""Table 3: sequential time, reordering cost, parallel time, data volume
and message count on TreadMarks and HLRC, 16 processors."""

from repro.experiments.report import render_table
from repro.experiments.tables import table3


def test_table3(benchmark, scale, emit):
    rows = benchmark.pedantic(table3, args=(scale,), rounds=1, iterations=1)
    emit(
        "table3",
        render_table(
            [
                "Application", "Version", "Seq s", "Reorder s",
                "TM s", "TM MB", "TM msgs",
                "HLRC s", "HLRC MB", "HLRC msgs",
            ],
            [
                [
                    r.app, r.version, round(r.seq_time, 2), round(r.reorder_time, 3),
                    round(r.tm_time, 2), round(r.tm_data_mbytes, 1), r.tm_messages,
                    round(r.hlrc_time, 2), round(r.hlrc_data_mbytes, 1), r.hlrc_messages,
                ]
                for r in rows
            ],
            title="Table 3: software-DSM traffic and times (simulated)",
        ),
    )
    by = {(r.app, r.version): r for r in rows}

    def gain(app, version, field):
        return getattr(by[(app, "original")], field) / max(
            getattr(by[(app, version)], field), 1e-12
        )

    # Reordered versions send less data and fewer messages on TreadMarks
    # (paper: 2.0-3.7x less data, 1.4-12.3x fewer messages).
    for app, version in (
        ("Barnes-Hut", "hilbert"),
        ("FMM", "hilbert"),
        ("Water-Spatial", "hilbert"),
        ("Moldyn", "column"),
        ("Unstructured", "column"),
    ):
        assert gain(app, version, "tm_data_mbytes") > 1.3, app
        assert gain(app, version, "tm_messages") > 1.3, app
        assert gain(app, version, "hlrc_data_mbytes") > 1.1, app
    # TreadMarks message reduction for Barnes-Hut exceeds HLRC's
    # (paper: 12.3x vs 2.8x).
    assert gain("Barnes-Hut", "hilbert", "tm_messages") > gain(
        "Barnes-Hut", "hilbert", "hlrc_messages"
    )
    # Homeless protocol sends more messages than home-based for the
    # false-sharing-heavy originals.
    assert by[("Barnes-Hut", "original")].tm_messages > by[
        ("Barnes-Hut", "original")
    ].hlrc_messages
