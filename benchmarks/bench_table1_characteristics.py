"""Table 1: applications, input data sets, synchronization, object sizes."""

from repro.experiments.report import render_table
from repro.experiments.tables import table1


def test_table1(benchmark, scale, emit):
    rows = benchmark.pedantic(table1, args=(scale,), rounds=1, iterations=1)
    emit(
        "table1",
        render_table(
            ["Application", "Size", "Iter", "Sync", "Object bytes", "Category"],
            [
                [r["application"], r["size"], r["iterations"], r["sync"],
                 r["object_size"], r["category"]]
                for r in rows
            ],
            title="Table 1: application characteristics",
        ),
    )
    assert len(rows) == 5
