"""Ablation (extension): DSM overhead over ideal message passing.

Section 6 of the paper frames reordering as "an implicit partitioning of
the data", with explicit message passing as the other route to the same
end.  This bench quantifies the gap: the data/message multiplier of the
TreadMarks protocol over an ideal explicit-communication schedule of the
same computation partition — and how far reordering closes it.
"""

from repro.apps import APP_REGISTRY, AppConfig
from repro.experiments.message_passing import dsm_overhead, ideal_message_passing
from repro.experiments.report import render_table
from repro.experiments.runner import make_app, versions_for
from repro.machines import simulate_treadmarks


def test_mp_overhead(benchmark, scale, emit):
    def compute():
        rows = []
        for name in ("barnes-hut", "moldyn", "unstructured"):
            for version in ("original", versions_for(name)[-1] if APP_REGISTRY[name].category == 2 else "hilbert"):
                app = make_app(
                    name,
                    AppConfig(
                        n=scale.n[name] // 2,
                        nprocs=scale.nprocs,
                        iterations=min(scale.iterations[name], 3),
                        seed=scale.seed,
                    ),
                    version,
                )
                trace = app.run()
                ideal = ideal_message_passing(trace)
                tm = simulate_treadmarks(trace)
                ov = dsm_overhead(tm, ideal)
                rows.append(
                    [
                        name,
                        version,
                        round(ideal.data_mbytes, 2),
                        round(tm.data_mbytes, 2),
                        round(ov["data_factor"], 1),
                        round(ov["message_factor"], 1),
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "ablation_mp_overhead",
        render_table(
            ["application", "version", "ideal MB", "TM MB", "data x", "msgs x"],
            rows,
            title="Ablation: TreadMarks overhead over ideal message passing",
        ),
    )
    by = {(r[0], r[1]): r for r in rows}
    for name in ("barnes-hut", "moldyn", "unstructured"):
        versions = [v for (n_, v) in by if n_ == name]
        reordered = [v for v in versions if v != "original"][0]
        # Reordering shrinks the DSM-vs-message-passing data gap.
        assert by[(name, reordered)][4] < by[(name, "original")][4], name