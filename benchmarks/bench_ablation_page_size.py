"""Ablation: the Hilbert/column crossover vs consistency-unit size.

The paper argues (sections 3.4 and 5.3.2) that column ordering wins for
block-partitioned apps on page-based DSMs while Hilbert wins at cache-line
granularity.  This sweep locates the crossover for Moldyn.
"""

from repro.experiments.ablations import page_size_sweep
from repro.experiments.report import render_table


def test_page_size_crossover(benchmark, scale, emit):
    rows = benchmark.pedantic(
        page_size_sweep,
        kwargs=dict(
            n=scale.n["moldyn"] // 2,
            nprocs=scale.nprocs,
            page_sizes=(128, 512, 2048, 8192),
            iterations=3,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_page_size",
        render_table(
            ["unit bytes", "column msgs", "column MB", "hilbert msgs", "hilbert MB", "winner"],
            [
                [
                    r["page_size"], r["column_messages"], round(r["column_mbytes"], 2),
                    r["hilbert_messages"], round(r["hilbert_mbytes"], 2),
                    "column" if r["column_messages"] < r["hilbert_messages"] else "hilbert",
                ]
                for r in rows
            ],
            title="Ablation: Moldyn TreadMarks traffic vs consistency-unit size",
        ),
    )
    by = {r["page_size"]: r for r in rows}
    assert by[128]["hilbert_messages"] < by[128]["column_messages"]
    assert by[8192]["column_messages"] < by[8192]["hilbert_messages"]
