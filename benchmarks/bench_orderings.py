"""Ordering-zoo benchmark: key-generation throughput and tuned counters.

Two measurements, persisted to ``benchmarks/results/BENCH_orderings.json``:

* **keygen throughput** — every ordering in the registry generates keys
  for one 65 536-point 3-D Plummer-like cloud (graph orderings get the
  Hilbert-chain pairs, built outside the timed region).  No floor — the
  orderings differ by design (RCM pays for adjacency + search) — but
  every generator must return a full set of keys.
* **tuned vs hilbert** — ``repro tune`` on Barnes-Hut/origin and
  Unstructured/TreadMarks at n=8192, P=16: the recommended ordering's
  cost-model counters (L2/TLB misses, DSM messages and bytes) next to
  Hilbert's, the paper's all-round default.  Asserts the acceptance
  property end-to-end at benchmark scale: Unstructured on TreadMarks
  selects ``rcm`` — a zoo member, not one of the paper's four — and its
  score beats Hilbert's.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.graph import GRAPH_ORDERINGS, hilbert_chain_pairs
from repro.core.keys import ORDERINGS, key_generator
from repro.experiments.tune import TuneSpec, tune

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

KEYGEN_N = 65536
BITS = 16
ROUNDS = 3

TUNE_N = 8192
TUNE_P = 16
TUNE_ITERATIONS = 2
TUNE_PAIRS = (("barnes-hut", "origin"), ("unstructured", "treadmarks"))


def _keygen_throughput():
    rng = np.random.default_rng(11)
    pts = rng.standard_normal((KEYGEN_N, 3)) / np.sqrt(
        rng.random(KEYGEN_N)[:, None] + 0.05
    )
    chain = hilbert_chain_pairs(pts)
    out = {}
    for name in sorted(ORDERINGS):
        gen = key_generator(name)
        kwargs = {"pairs": chain} if name in GRAPH_ORDERINGS else {}
        best = 1e30
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            keys = gen(pts, bits=BITS, **kwargs)
            best = min(best, time.perf_counter() - t0)
        assert keys.shape == (KEYGEN_N,)
        out[name] = {
            "seconds": round(best, 5),
            "mkeys_per_s": round(KEYGEN_N / best / 1e6, 3),
        }
    return out


def _tuned_vs_hilbert():
    out = {}
    for app, machine in TUNE_PAIRS:
        spec = TuneSpec(
            app=app, machine=machine, n=TUNE_N, nprocs=TUNE_P,
            iterations=TUNE_ITERATIONS,
        )
        result = tune(spec)
        out[f"{app}/{machine}"] = {
            "candidates": list(spec.candidates),
            "best": result.best,
            "scores": {
                s.version: {
                    "score_ms": round(s.score * 1e3, 4),
                    "reorder_ms": round(s.reorder_cost * 1e3, 4),
                    "counters": s.counters,
                }
                for s in result.scores
            },
        }
    return out


@pytest.mark.slow
def test_ordering_zoo_bench(emit):
    keygen = _keygen_throughput()
    tuned = _tuned_vs_hilbert()

    # The acceptance pair at benchmark scale: a zoo ordering wins.
    unstr = tuned["unstructured/treadmarks"]
    assert unstr["best"] == "rcm"
    assert (unstr["scores"]["rcm"]["score_ms"]
            < unstr["scores"]["hilbert"]["score_ms"])

    lines = [
        f"Ordering zoo — keygen on {KEYGEN_N} 3-D points (bits={BITS}, "
        f"min of {ROUNDS} rounds)",
        "",
        f"{'ordering':<10} {'seconds':>9} {'Mkeys/s':>9}",
    ]
    for name, row in sorted(
        keygen.items(), key=lambda kv: -kv[1]["mkeys_per_s"]
    ):
        lines.append(
            f"{name:<10} {row['seconds']:>9.4f} {row['mkeys_per_s']:>9.2f}"
        )
    for pair, data in tuned.items():
        lines += [
            "",
            f"tune {pair} (n={TUNE_N}, P={TUNE_P}, "
            f"{TUNE_ITERATIONS} iterations) -> {data['best']}",
            f"{'version':<10} {'score ms':>10} {'reorder ms':>11}  counters",
        ]
        for version in data["candidates"]:
            s = data["scores"][version]
            mark = " <- best" if version == data["best"] else ""
            counters = ", ".join(
                f"{k}={v}" for k, v in s["counters"].items() if k != "points"
            )
            lines.append(
                f"{version:<10} {s['score_ms']:>10.3f} "
                f"{s['reorder_ms']:>11.3f}  {counters}{mark}"
            )
    emit("bench_orderings", "\n".join(lines))

    payload = {
        "bench": "orderings",
        "keygen": {"n": KEYGEN_N, "bits": BITS, "rounds": ROUNDS,
                   "throughput": keygen},
        "tune": {"n": TUNE_N, "nprocs": TUNE_P,
                 "iterations": TUNE_ITERATIONS, "results": tuned},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_orderings.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
