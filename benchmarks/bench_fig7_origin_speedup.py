"""Figure 7: speedups of original vs reordered versions on the simulated
Origin 2000, 16 processors.

Paper shapes asserted: every application except Water-Spatial gains from
reordering (12%-99% in the paper); for the Category 2 apps Hilbert beats
column on hardware.
"""

from repro.experiments.figures import fig7
from repro.experiments.report import hbar, render_table


def test_fig7(benchmark, scale, emit):
    out = benchmark.pedantic(fig7, args=(scale,), rounds=1, iterations=1)
    vmax = max(s for versions in out.values() for s in versions.values())
    rows = []
    for app, versions in out.items():
        for version, speedup in versions.items():
            rows.append([app, version, round(speedup, 2), hbar(speedup, vmax)])
    emit(
        "fig7",
        render_table(
            ["application", "version", "speedup", ""],
            rows,
            title=f"Figure 7: speedups on simulated Origin 2000 ({scale.nprocs} procs)",
        ),
    )

    for app in ("barnes-hut", "moldyn", "unstructured"):
        assert out[app]["hilbert"] > out[app]["original"], app
    # FMM: the miss-count reductions reproduce (Table 2 bench asserts L2
    # ~2.7x and TLB ~38x) but at reduced scale the run is compute-bound,
    # so the Origin *time* stays within a few percent (paper: +28%).
    # See EXPERIMENTS.md, deviation D2.
    assert out["fmm"]["hilbert"] > 0.9 * out["fmm"]["original"]
    # Category 2 on hardware: Hilbert >= column (paper: 22% for Moldyn).
    assert out["moldyn"]["hilbert"] > out["moldyn"]["column"]
    # Water-Spatial: little to gain (680-byte objects >> 128-byte lines);
    # allow anything within a generous band around "no change".
    ws = out["water-spatial"]
    assert ws["hilbert"] > 0.8 * ws["original"]
