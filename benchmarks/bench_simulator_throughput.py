"""Micro-benchmarks of the simulators themselves (pytest-benchmark stats).

Not a paper artifact — these track the replay engines' throughput so
regressions in the hot loops (OrderedDict LRU, interval group-bys) are
visible across commits.

``test_kernel_replay_speedup`` is the acceptance benchmark for the
vectorized kernel layer (:mod:`repro.machines.kernels`): on the
Barnes-Hut n=8192, P=16 trace the batch engine must replay the decoded
access streams at >= 5x the throughput of the reference loop engine,
with identical miss/invalidation counts.  Its numbers are persisted to
``benchmarks/results/bench_simulator_kernels.txt`` via the ``emit``
fixture.
"""

import time

import numpy as np
import pytest

from repro.apps import AppConfig, BarnesHut, Moldyn
from repro.machines import (
    LRUCache,
    SetAssocCache,
    simulate_hardware,
    simulate_hlrc,
    simulate_treadmarks,
)
from repro.machines import cache as cache_mod
from repro.machines import hardware as hw
from repro.machines.params import origin2000_scaled
from repro.trace.layout import Layout


@pytest.fixture(scope="module")
def trace():
    app = Moldyn(AppConfig(n=1024, nprocs=8, iterations=3, seed=7))
    app.reorder("column")
    return app.run()


def test_lru_stream_throughput(benchmark):
    keys = np.random.default_rng(0).integers(0, 4096, 200_000)
    def run():
        c = LRUCache(1024)
        c.access_stream(keys, collapse=False)
        return c.misses
    misses = benchmark(run)
    assert misses > 0


def test_setassoc_stream_throughput(benchmark):
    keys = np.random.default_rng(1).integers(0, 4096, 200_000)
    def run():
        c = SetAssocCache(256, 4)
        c.access_stream(keys, collapse=False)
        return c.misses
    misses = benchmark(run)
    assert misses > 0


def test_hardware_replay_throughput(benchmark, trace):
    params = origin2000_scaled(64, 8)
    res = benchmark.pedantic(
        simulate_hardware, args=(trace, params), rounds=3, iterations=1
    )
    assert res.total_l2_misses > 0


def test_treadmarks_replay_throughput(benchmark, trace):
    res = benchmark.pedantic(simulate_treadmarks, args=(trace,), rounds=3, iterations=1)
    assert res.messages > 0


def test_hlrc_replay_throughput(benchmark, trace):
    res = benchmark.pedantic(simulate_hlrc, args=(trace,), rounds=3, iterations=1)
    assert res.messages > 0


# --------------------------------------------------------------------------
# Kernel-vs-loop acceptance benchmark (Barnes-Hut n=8192, P=16)
# --------------------------------------------------------------------------


def _decode_streams(trace, params, layout):
    """Decode every (epoch, proc) burst list into line/page/written arrays.

    This is the shared front end both engines pay inside
    ``simulate_hardware``; pre-extracting it isolates the cache *replay*
    cost, which is what the kernel layer vectorizes.
    """
    shift = params.line_size.bit_length() - 1
    nlines = (layout.total_bytes >> shift) + 1
    streams = []
    for epoch in trace.epochs:
        streams.append(
            [
                hw._proc_streams(
                    epoch, layout, params.line_size, params.page_size, p, nlines
                )
                for p in range(trace.nprocs)
            ]
        )
    return streams


def _replay(streams, params, nprocs, engine):
    """Replay pre-decoded streams through L2s+TLBs with barrier invalidation.

    Returns (seconds, accesses replayed, l2 misses, tlb misses,
    invalidations) so callers can both time the engines and assert they
    agree count-for-count.
    """
    caches = [SetAssocCache(params.l2_sets, params.l2_assoc) for _ in range(nprocs)]
    tlbs = [LRUCache(params.tlb_entries) for _ in range(nprocs)]
    l2 = np.zeros(nprocs, dtype=np.int64)
    tlb = np.zeros(nprocs, dtype=np.int64)
    inval = np.zeros(nprocs, dtype=np.int64)
    naccesses = 0
    t0 = time.perf_counter()
    for epoch_streams in streams:
        for p, (lines, pages, _written) in enumerate(epoch_streams):
            if lines.shape[0]:
                l2[p] += caches[p].access_stream(lines, engine=engine)
                tlb[p] += tlbs[p].access_stream(pages, engine=engine)
                naccesses += lines.shape[0] + pages.shape[0]
        for q, (_l, _p, written_q) in enumerate(epoch_streams):
            if written_q.shape[0] == 0:
                continue
            for p in range(nprocs):
                if p != q:
                    inval[p] += caches[p].invalidate_present(
                        written_q, assume_unique=True
                    ).shape[0]
    return time.perf_counter() - t0, naccesses, l2, tlb, inval


@pytest.mark.slow
def test_kernel_replay_speedup(emit):
    """Acceptance: batch kernels replay the BH trace >= 5x faster than the loop.

    The trace is decoded once; both engines then replay the identical
    line/page streams (including barrier invalidations).  Counts must
    match exactly — the speedup is only meaningful if the engines agree.
    End-to-end ``simulate_hardware`` wall times (decode included) are
    recorded as secondary data.
    """
    trace = BarnesHut(AppConfig(n=8192, nprocs=16, iterations=2, seed=5)).run()
    params = origin2000_scaled(8, 16)
    layout = Layout.for_trace(trace, align=params.page_size)
    streams = _decode_streams(trace, params, layout)

    # Warm-up pass (first-touch page faults, allocator growth), then take
    # the best of two rounds per engine — wall-clock noise on a shared
    # machine is the main threat to a ratio assertion.
    _replay(streams, params, trace.nprocs, "kernel")
    t_kernel, n_kernel, l2_k, tlb_k, inv_k = min(
        (_replay(streams, params, trace.nprocs, "kernel") for _ in range(2)),
        key=lambda r: r[0],
    )
    t_loop, n_loop, l2_l, tlb_l, inv_l = min(
        (_replay(streams, params, trace.nprocs, "loop") for _ in range(2)),
        key=lambda r: r[0],
    )
    assert n_kernel == n_loop
    np.testing.assert_array_equal(l2_k, l2_l)
    np.testing.assert_array_equal(tlb_k, tlb_l)
    np.testing.assert_array_equal(inv_k, inv_l)

    speedup = t_loop / t_kernel
    tput_kernel = n_kernel / t_kernel
    tput_loop = n_loop / t_loop

    # Secondary: whole-simulation wall time, decode and classification
    # included (shared overhead both engines pay identically).
    e2e = {}
    saved = cache_mod.DEFAULT_ENGINE
    try:
        for eng in ("kernel", "loop"):
            cache_mod.DEFAULT_ENGINE = eng
            t0 = time.perf_counter()
            simulate_hardware(trace, params, layout=layout)
            e2e[eng] = time.perf_counter() - t0
    finally:
        cache_mod.DEFAULT_ENGINE = saved

    lines = [
        "Simulator kernel throughput — Barnes-Hut n=8192, P=16, 2 iterations",
        f"machine: origin2000_scaled(8, 16); accesses replayed: {n_kernel:,}",
        "",
        f"{'engine':<8} {'replay s':>9} {'Maccess/s':>10} {'end-to-end s':>13}",
        f"{'loop':<8} {t_loop:>9.2f} {tput_loop / 1e6:>10.2f} {e2e['loop']:>13.2f}",
        f"{'kernel':<8} {t_kernel:>9.2f} {tput_kernel / 1e6:>10.2f} {e2e['kernel']:>13.2f}",
        "",
        f"replay speedup: {speedup:.2f}x (acceptance floor: 5x)",
        f"end-to-end speedup: {e2e['loop'] / e2e['kernel']:.2f}x",
        "counts: l2/tlb misses and invalidations identical across engines",
    ]
    emit("bench_simulator_kernels", "\n".join(lines))
    assert speedup >= 5.0, (
        f"kernel replay only {speedup:.2f}x faster than loop "
        f"(kernel {t_kernel:.2f}s, loop {t_loop:.2f}s); acceptance floor is 5x"
    )
