"""Micro-benchmarks of the simulators themselves (pytest-benchmark stats).

Not a paper artifact — these track the replay engines' throughput so
regressions in the hot loops (OrderedDict LRU, interval group-bys) are
visible across commits.
"""

import numpy as np
import pytest

from repro.apps import AppConfig, Moldyn
from repro.machines import (
    LRUCache,
    SetAssocCache,
    simulate_hardware,
    simulate_hlrc,
    simulate_treadmarks,
)
from repro.machines.params import origin2000_scaled


@pytest.fixture(scope="module")
def trace():
    app = Moldyn(AppConfig(n=1024, nprocs=8, iterations=3, seed=7))
    app.reorder("column")
    return app.run()


def test_lru_stream_throughput(benchmark):
    keys = np.random.default_rng(0).integers(0, 4096, 200_000)
    def run():
        c = LRUCache(1024)
        c.access_stream(keys, collapse=False)
        return c.misses
    misses = benchmark(run)
    assert misses > 0


def test_setassoc_stream_throughput(benchmark):
    keys = np.random.default_rng(1).integers(0, 4096, 200_000)
    def run():
        c = SetAssocCache(256, 4)
        c.access_stream(keys, collapse=False)
        return c.misses
    misses = benchmark(run)
    assert misses > 0


def test_hardware_replay_throughput(benchmark, trace):
    params = origin2000_scaled(64, 8)
    res = benchmark.pedantic(
        simulate_hardware, args=(trace, params), rounds=3, iterations=1
    )
    assert res.total_l2_misses > 0


def test_treadmarks_replay_throughput(benchmark, trace):
    res = benchmark.pedantic(simulate_treadmarks, args=(trace,), rounds=3, iterations=1)
    assert res.messages > 0


def test_hlrc_replay_throughput(benchmark, trace):
    res = benchmark.pedantic(simulate_hlrc, args=(trace,), rounds=3, iterations=1)
    assert res.messages > 0
