"""Acceptance benchmark for the one-pass multi-configuration sweep engine.

``test_sweep_engine_speedup`` runs a 16-point L2-capacity sweep plus a
4-point DSM page-size sweep on the Barnes-Hut n=8192, P=16 trace two
ways:

* **per-point** — one full ``simulate_hardware`` / ``simulate_treadmarks``
  replay per grid point, the pre-sweep-engine cost model;
* **sweep** — ``simulate_hardware_sweep`` (every capacity read off one
  stack-distance replay per line-size family) and
  ``simulate_treadmarks_sweep`` (interval summaries built at the finest
  page size and folded up the 2x ladder).

Every grid point's counters — L2/TLB misses, invalidations, modelled
time, DSM messages and payload bytes — must be identical between the
two paths; the speedup is only meaningful if the results are.  The
acceptance floor is >= 5x on the combined grid.

Both paths reload the trace fresh from its ``.npt`` bundle each round,
so neither inherits the other's decode memo (per-point round 2 would
otherwise reuse the sweep's cached intervals and look faster than it
is).  Numbers are persisted to ``benchmarks/results/bench_sweep_engine
.txt`` and ``benchmarks/results/BENCH_sweep.json``.
"""

import gc
import json
import pathlib
import time
from dataclasses import replace

import pytest

from repro.apps import AppConfig, BarnesHut
from repro.machines import (
    simulate_hardware,
    simulate_hardware_sweep,
    simulate_treadmarks,
    simulate_treadmarks_sweep,
)
from repro.machines.params import cluster_scaled, origin2000_scaled
from repro.trace.io import load_trace, save_trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

APP_N = 8192
NPROCS = 16
ITERATIONS = 2
SEED = 5
HW_SCALE = 8
L2_POINTS = 16
PAGE_SIZES = (1024, 2048, 4096, 8192)
FLOOR = 5.0
ROUNDS = 2


def _grid(base):
    """The 16 L2 capacities of the base line-size geometry family."""
    set_span = base.l2_bytes // base.l2_assoc
    return [set_span * k for k in range(1, L2_POINTS + 1)]


def _hw_counters(res):
    return {
        "time": res.time,
        "l2_misses": res.total_l2_misses,
        "tlb_misses": res.total_tlb_misses,
        "invalidations": int(res.invalidations.sum()),
    }


def _dsm_counters(res):
    return {"time": res.time, "messages": res.messages, "data_bytes": res.data_bytes}


def _run_sweep(path, base, cluster):
    trace = load_trace(path, mmap=True)
    t0 = time.perf_counter()
    hw = simulate_hardware_sweep(trace, base, l2_bytes=_grid(base))
    t_hw = time.perf_counter() - t0
    t0 = time.perf_counter()
    dsm = simulate_treadmarks_sweep(trace, cluster, PAGE_SIZES)
    t_dsm = time.perf_counter() - t0
    counters = {
        **{f"l2@{r.params.l2_bytes}": _hw_counters(r) for r in hw},
        **{f"page@{s}": _dsm_counters(dsm[s]) for s in PAGE_SIZES},
    }
    del trace, hw, dsm
    gc.collect()
    return t_hw, t_dsm, counters


def _run_per_point(path, base, cluster):
    trace = load_trace(path, mmap=True)
    counters = {}
    t0 = time.perf_counter()
    for nbytes in _grid(base):
        assoc = nbytes // (base.l2_bytes // base.l2_assoc)
        params = replace(base, l2_bytes=nbytes, l2_assoc=assoc)
        counters[f"l2@{nbytes}"] = _hw_counters(simulate_hardware(trace, params))
    t_hw = time.perf_counter() - t0
    t0 = time.perf_counter()
    for size in PAGE_SIZES:
        res = simulate_treadmarks(trace, replace(cluster, page_size=size))
        counters[f"page@{size}"] = _dsm_counters(res)
    t_dsm = time.perf_counter() - t0
    del trace
    gc.collect()
    return t_hw, t_dsm, counters


@pytest.mark.slow
def test_sweep_engine_speedup(tmp_path, emit):
    """Acceptance: one-pass sweeps are >= 5x faster than per-point loops."""
    base = origin2000_scaled(HW_SCALE, NPROCS)
    cluster = cluster_scaled(nprocs=NPROCS)

    trace = BarnesHut(
        AppConfig(n=APP_N, nprocs=NPROCS, iterations=ITERATIONS, seed=SEED)
    ).run()
    path = tmp_path / "t.npt"
    save_trace(trace, path)
    del trace
    gc.collect()

    t_sweep = {"hw": 1e30, "dsm": 1e30}
    t_point = {"hw": 1e30, "dsm": 1e30}
    for _ in range(ROUNDS):
        hw, dsm, c_sweep = _run_sweep(path, base, cluster)
        t_sweep["hw"] = min(t_sweep["hw"], hw)
        t_sweep["dsm"] = min(t_sweep["dsm"], dsm)
        hw, dsm, c_point = _run_per_point(path, base, cluster)
        t_point["hw"] = min(t_point["hw"], hw)
        t_point["dsm"] = min(t_point["dsm"], dsm)

    # Byte-for-byte identical counters at every grid point.
    assert set(c_sweep) == set(c_point)
    for point in c_point:
        assert c_sweep[point] == c_point[point], (
            f"{point}: sweep {c_sweep[point]} != per-point {c_point[point]}"
        )

    sweep_total = t_sweep["hw"] + t_sweep["dsm"]
    point_total = t_point["hw"] + t_point["dsm"]
    speedup = point_total / sweep_total
    hw_speedup = t_point["hw"] / t_sweep["hw"]
    dsm_speedup = t_point["dsm"] / t_sweep["dsm"]

    lines = [
        f"Sweep engine — Barnes-Hut n={APP_N}, P={NPROCS}, "
        f"{ITERATIONS} iterations (seed {SEED})",
        f"grid: {L2_POINTS} L2 capacities (assoc 1..{L2_POINTS}) + "
        f"{len(PAGE_SIZES)} TreadMarks page sizes {PAGE_SIZES}",
        f"timings: min of {ROUNDS} rounds, fresh mmap load (cold decode memo)"
        " each round",
        "",
        f"{'stage':<22} {'per-point s':>12} {'sweep s':>9} {'speedup':>8}",
        f"{'origin L2 sweep':<22} {t_point['hw']:>12.3f} {t_sweep['hw']:>9.3f}"
        f" {hw_speedup:>7.2f}x",
        f"{'treadmarks page sweep':<22} {t_point['dsm']:>12.3f}"
        f" {t_sweep['dsm']:>9.3f} {dsm_speedup:>7.2f}x",
        f"{'combined grid':<22} {point_total:>12.3f} {sweep_total:>9.3f}"
        f" {speedup:>7.2f}x",
        "",
        f"acceptance floor: {FLOOR:.0f}x on the combined grid",
        f"counters: all {len(c_point)} grid points identical across paths",
    ]
    emit("bench_sweep_engine", "\n".join(lines))

    payload = {
        "bench": "sweep_engine",
        "app": "barnes_hut",
        "n": APP_N,
        "nprocs": NPROCS,
        "iterations": ITERATIONS,
        "seed": SEED,
        "hw_scale": HW_SCALE,
        "l2_points": L2_POINTS,
        "page_sizes": list(PAGE_SIZES),
        "floor": FLOOR,
        "rounds": ROUNDS,
        "per_point_s": {k: round(v, 4) for k, v in t_point.items()},
        "sweep_s": {k: round(v, 4) for k, v in t_sweep.items()},
        "speedup": {
            "origin": round(hw_speedup, 3),
            "treadmarks": round(dsm_speedup, 3),
            "combined": round(speedup, 3),
        },
        "counters": c_point,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert speedup >= FLOOR, (
        f"sweep engine only {speedup:.2f}x faster than per-point loops"
        f" ({point_total:.2f}s -> {sweep_total:.2f}s); floor is {FLOOR:.0f}x"
    )
