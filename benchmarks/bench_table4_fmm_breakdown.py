"""Table 4: per-phase time breakdown of FMM on TreadMarks, original vs
Hilbert-reordered."""

from repro.experiments.report import render_table
from repro.experiments.tables import TABLE4_PHASES, table4


def test_table4(benchmark, scale, emit):
    out = benchmark.pedantic(table4, args=(scale,), rounds=1, iterations=1)
    rows = []
    for phase in (*TABLE4_PHASES, "total"):
        o, h = out["original"][phase], out["hilbert"][phase]
        ratio = o / h if h > 0 else float("inf")
        rows.append([phase, round(o, 3), round(h, 3), round(ratio, 2)])
    emit(
        "table4",
        render_table(
            ["Phase", "Original s", "Reordered s", "ratio"],
            rows,
            title="Table 4: FMM time breakdown on TreadMarks (simulated)",
        ),
    )
    o, h = out["original"], out["hilbert"]
    # The particle-touching phases shrink the most (paper: build tree 8.9x,
    # traversal 8.3x, intra 22x, other 21x); build_list barely moves.
    assert h["build_tree"] < o["build_tree"]
    assert h["intra_particle"] < 0.5 * o["intra_particle"]
    assert h["other"] < 0.5 * o["other"]
    assert h["inter_particle"] < o["inter_particle"]
    assert h["total"] < o["total"]
