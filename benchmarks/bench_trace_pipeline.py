"""Acceptance benchmark for the columnar packed trace pipeline.

``test_trace_pipeline_speedup`` measures the full app→pack→save→load→
simulate path on the Barnes-Hut n=8192, P=16 trace twice:

* **baseline** — burst-list builder, legacy compressed ``.npz``
  serialization, and the simulators' per-burst decode paths;
* **packed** — columnar builder, raw mmap-loadable ``.npt`` bundle, and
  the simulators' packed fast paths sharing one decode via the memo.

The acceptance floor (>= 3x) applies to the **format-bound pipeline**:
save + load + the DSM simulations (TreadMarks, HLRC), the stages whose
cost the trace representation actually determines — serialization bytes,
deserialization, access-stream decode, and interval building.  Two
stages are timed and reported but excluded from the floor because their
cost is fixed work the format cannot touch, which would dilute the ratio
toward 1x:

* *generate* — app physics; the same Barnes-Hut force computation runs
  either way (~6.4s, which alone caps any end-to-end ratio below 3x);
* *sim_origin* — dominated by the hardware cache-replay kernels (~1.9s
  of ~2.2s; see ``bench_simulator_throughput.py``, which owns that
  floor), nearly identical across formats.  It still carries its own
  regression guard (``ORIGIN_TOLERANCE``): the packed replay must not
  fall behind the burst baseline, as it once did when the packed path
  re-materialized whole-epoch ``region``/``is_write`` columns.

The simulators' counters (L2 misses, DSM messages/bytes) must match
exactly across the two runs — the speedup is only meaningful if the
results are identical.

Numbers are persisted to ``benchmarks/results/bench_trace_pipeline.txt``
and ``benchmarks/results/BENCH_pipeline.json``.
"""

import gc
import json
import pathlib
import time

import pytest

from repro.apps import AppConfig, BarnesHut
from repro.machines import simulate_hardware, simulate_hlrc, simulate_treadmarks
from repro.machines.params import cluster_scaled, origin2000_scaled
from repro.trace import builder as builder_mod
from repro.trace.io import load_trace, save_trace, save_trace_npz

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

APP_N = 8192
NPROCS = 16
ITERATIONS = 2
SEED = 5
FLOOR = 3.0

STAGES = ("generate", "save", "load", "sim_origin", "sim_treadmarks", "sim_hlrc")
# Floor applies to the format-bound stages (see module docstring).
PIPELINE_STAGES = ("save", "load", "sim_treadmarks", "sim_hlrc")
ROUNDS = 3
# sim_origin is excluded from the pipeline floor but guarded separately:
# packed replay must stay at least as fast as the burst baseline (within
# a noise tolerance).  The guard measures the two forms *interleaved*
# (packed, burst, packed, burst, ...) so the shared VM's slow timing
# drift — which can easily exceed the ~15% regression this guards
# against when the forms run minutes apart — cancels out of the ratio.
ORIGIN_TOLERANCE = 1.05


def _run_pipeline(tmp, packed):
    """One full pipeline pass; returns ({stage: seconds}, {counter: value}).

    Each stage after generation is timed ``ROUNDS`` times and the minimum
    kept: wall-clock noise on a shared VM is strictly additive, so min-of-N
    recovers the stage's true cost.  Every round reloads the file fresh, so
    the simulators pay a cold decode (no memo carry-over between rounds).
    """
    times = {}
    prev = builder_mod.set_packed_default(packed)
    try:
        t0 = time.perf_counter()
        trace = BarnesHut(
            AppConfig(n=APP_N, nprocs=NPROCS, iterations=ITERATIONS, seed=SEED)
        ).run()
        times["generate"] = time.perf_counter() - t0

        path = tmp / ("t.npt" if packed else "t.npz")
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            if packed:
                save_trace(trace, path)
            else:
                save_trace_npz(trace, path)
            times["save"] = min(times.get("save", 1e30), time.perf_counter() - t0)

        del trace  # keep the resident set small during the replay rounds
        gc.collect()

        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            loaded = load_trace(path, mmap=True)
            times["load"] = min(times.get("load", 1e30), time.perf_counter() - t0)

            t0 = time.perf_counter()
            hw = simulate_hardware(loaded, origin2000_scaled(8, NPROCS))
            times["sim_origin"] = min(
                times.get("sim_origin", 1e30), time.perf_counter() - t0
            )

            t0 = time.perf_counter()
            tmk = simulate_treadmarks(loaded, cluster_scaled(nprocs=NPROCS))
            times["sim_treadmarks"] = min(
                times.get("sim_treadmarks", 1e30), time.perf_counter() - t0
            )

            t0 = time.perf_counter()
            hlrc = simulate_hlrc(loaded, cluster_scaled(nprocs=NPROCS))
            times["sim_hlrc"] = min(
                times.get("sim_hlrc", 1e30), time.perf_counter() - t0
            )
            del loaded
            gc.collect()
    finally:
        builder_mod.set_packed_default(prev)

    counters = {
        "origin_l2_misses": int(hw.total_l2_misses),
        "treadmarks_messages": int(tmk.messages),
        "treadmarks_data_bytes": int(tmk.data_bytes),
        "hlrc_messages": int(hlrc.messages),
        "hlrc_data_bytes": int(hlrc.data_bytes),
        "file_bytes": path.stat().st_size,
    }
    return times, counters


def _paired_origin_times(npt_path, npz_path):
    """Interleaved min-of-``ROUNDS`` sim_origin timings: (packed, burst).

    Each round reloads fresh (cold decode memo) and alternates the two
    forms back-to-back, so within-pair noise is all that is left in the
    packed/burst ratio.
    """
    params = origin2000_scaled(8, NPROCS)
    t_packed, t_burst = 1e30, 1e30
    for _ in range(ROUNDS):
        for path, is_packed in ((npt_path, True), (npz_path, False)):
            loaded = load_trace(path, mmap=True)
            t0 = time.perf_counter()
            simulate_hardware(loaded, params)
            dt = time.perf_counter() - t0
            if is_packed:
                t_packed = min(t_packed, dt)
            else:
                t_burst = min(t_burst, dt)
            del loaded
            gc.collect()
    return t_packed, t_burst


@pytest.mark.slow
def test_trace_pipeline_speedup(tmp_path, emit):
    """Acceptance: the packed pipeline is >= 3x faster than the burst one."""
    # Packed first: any OS page-cache / allocator warm-up from the first
    # pass only helps the baseline, making the ratio conservative.
    (tmp_path / "packed").mkdir()
    (tmp_path / "base").mkdir()
    t_packed, c_packed = _run_pipeline(tmp_path / "packed", True)
    t_base, c_base = _run_pipeline(tmp_path / "base", False)
    guard_packed, guard_burst = _paired_origin_times(
        tmp_path / "packed" / "t.npt", tmp_path / "base" / "t.npz"
    )

    for key in c_packed:
        if key == "file_bytes":
            continue
        assert c_packed[key] == c_base[key], (
            f"{key}: packed {c_packed[key]} != baseline {c_base[key]}"
        )

    pipe_packed = sum(t_packed[s] for s in PIPELINE_STAGES)
    pipe_base = sum(t_base[s] for s in PIPELINE_STAGES)
    e2e_packed = sum(t_packed.values())
    e2e_base = sum(t_base.values())
    pipeline_speedup = pipe_base / pipe_packed
    end_to_end_speedup = e2e_base / e2e_packed

    rows = [
        f"{'stage':<16} {'baseline s':>11} {'packed s':>9} {'speedup':>8}"
    ]
    for s in STAGES:
        ratio = t_base[s] / t_packed[s] if t_packed[s] else float("inf")
        rows.append(f"{s:<16} {t_base[s]:>11.3f} {t_packed[s]:>9.3f} {ratio:>7.2f}x")
    lines = [
        f"Trace pipeline — Barnes-Hut n={APP_N}, P={NPROCS}, "
        f"{ITERATIONS} iterations (seed {SEED})",
        "baseline: burst-list builder + compressed .npz + per-burst decode",
        "packed:   columnar builder + mmap .npt bundle + shared decode memo",
        f"stage timings: min of {ROUNDS} rounds, fresh load (cold decode) each",
        "",
        *rows,
        "",
        f"format-bound pipeline (save+load+TreadMarks+HLRC): {pipe_base:.2f}s -> "
        f"{pipe_packed:.2f}s = {pipeline_speedup:.2f}x "
        f"(acceptance floor: {FLOOR:.0f}x)",
        f"end-to-end (generation included): {e2e_base:.2f}s -> "
        f"{e2e_packed:.2f}s = {end_to_end_speedup:.2f}x",
        f"trace file: {c_base['file_bytes']:,} B (.npz) vs "
        f"{c_packed['file_bytes']:,} B (.npt)",
        "counters: origin L2 misses and DSM messages/bytes identical",
        f"sim_origin guard (paired, interleaved): packed {guard_packed:.3f}s vs "
        f"burst {guard_burst:.3f}s (tolerance {ORIGIN_TOLERANCE:.2f}x)",
    ]
    emit("bench_trace_pipeline", "\n".join(lines))

    payload = {
        "bench": "trace_pipeline",
        "app": "barnes_hut",
        "n": APP_N,
        "nprocs": NPROCS,
        "iterations": ITERATIONS,
        "seed": SEED,
        "floor": FLOOR,
        "rounds": ROUNDS,
        "pipeline_stages": list(PIPELINE_STAGES),
        "stages": {
            s: {"baseline_s": round(t_base[s], 4), "packed_s": round(t_packed[s], 4)}
            for s in STAGES
        },
        "pipeline": {
            "baseline_s": round(pipe_base, 4),
            "packed_s": round(pipe_packed, 4),
            "speedup": round(pipeline_speedup, 3),
        },
        "end_to_end": {
            "baseline_s": round(e2e_base, 4),
            "packed_s": round(e2e_packed, 4),
            "speedup": round(end_to_end_speedup, 3),
        },
        "counters": c_base,
        "file_bytes": {"npz": c_base["file_bytes"], "npt": c_packed["file_bytes"]},
        "origin_guard": {
            "packed_s": round(guard_packed, 4),
            "burst_s": round(guard_burst, 4),
            "tolerance": ORIGIN_TOLERANCE,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert pipeline_speedup >= FLOOR, (
        f"packed pipeline only {pipeline_speedup:.2f}x faster than burst "
        f"baseline ({pipe_base:.2f}s -> {pipe_packed:.2f}s); floor is {FLOOR:.0f}x"
    )
    # Regression guard: the packed hardware replay must not fall behind the
    # burst baseline again (it once did, from re-materializing the derived
    # region/is_write columns per processor).  Uses the paired interleaved
    # timings so VM drift between the two pipeline phases cannot fake a
    # regression; the small tolerance absorbs within-pair noise.
    assert guard_packed <= guard_burst * ORIGIN_TOLERANCE, (
        f"packed sim_origin regressed: {guard_packed:.3f}s vs "
        f"burst baseline {guard_burst:.3f}s (paired interleaved, "
        f"tolerance {ORIGIN_TOLERANCE:.2f}x)"
    )
